(* Tests for dream.traffic: flow combination, aggregate prefix-volume
   queries (against a brute-force model), topology switch mapping, traffic
   profiles and the synthetic generator's calibration and determinism. *)

module Rng = Dream_util.Rng
module Prefix = Dream_prefix.Prefix
module Flow = Dream_traffic.Flow
module Aggregate = Dream_traffic.Aggregate
module Switch_id = Dream_traffic.Switch_id
module Topology = Dream_traffic.Topology
module Profile = Dream_traffic.Profile
module Generator = Dream_traffic.Generator
module Epoch_data = Dream_traffic.Epoch_data

let p = Prefix.of_string

let flow addr volume = Flow.make ~addr ~volume

(* ---- Flow ---- *)

let test_flow_combine () =
  let combined = Flow.combine [ flow 5 1.0; flow 3 2.0; flow 5 4.0 ] in
  Alcotest.(check int) "two distinct addrs" 2 (List.length combined);
  (match combined with
  | [ a; b ] ->
    Alcotest.(check int) "sorted" 3 a.Flow.addr;
    Alcotest.(check (float 1e-9)) "summed" 5.0 b.Flow.volume
  | _ -> Alcotest.fail "expected two flows");
  Alcotest.(check (float 1e-9)) "total" 7.0 (Flow.total_volume combined)

(* ---- Aggregate ---- *)

let sample_flows =
  [ flow 0x0A000001 1.0; flow 0x0A000002 2.0; flow 0x0A800000 4.0; flow 0x0B000000 8.0 ]

let test_aggregate_volume () =
  let a = Aggregate.of_flows sample_flows in
  Alcotest.(check (float 1e-9)) "whole space" 15.0 (Aggregate.volume a Prefix.root);
  Alcotest.(check (float 1e-9)) "10/8" 7.0 (Aggregate.volume a (p "10.0.0.0/8"));
  Alcotest.(check (float 1e-9)) "10/9 left" 3.0 (Aggregate.volume a (p "10.0.0.0/9"));
  Alcotest.(check (float 1e-9)) "exact" 2.0 (Aggregate.volume a (p "10.0.0.2/32"));
  Alcotest.(check (float 1e-9)) "empty region" 0.0 (Aggregate.volume a (p "192.0.0.0/8"))

let test_aggregate_counts () =
  let a = Aggregate.of_flows sample_flows in
  Alcotest.(check int) "addresses under 10/8" 3 (Aggregate.count_addresses a (p "10.0.0.0/8"));
  Alcotest.(check int) "all" 4 (Aggregate.num_addresses a);
  Alcotest.(check (float 1e-9)) "total" 15.0 (Aggregate.total a)

let test_aggregate_flows_in () =
  let a = Aggregate.of_flows sample_flows in
  let inside = Aggregate.flows_in a (p "10.0.0.0/9") in
  Alcotest.(check int) "two flows" 2 (List.length inside)

let test_aggregate_merge () =
  let a = Aggregate.of_flows [ flow 1 1.0; flow 2 2.0 ] in
  let b = Aggregate.of_flows [ flow 2 3.0; flow 9 4.0 ] in
  let m = Aggregate.merge a b in
  Alcotest.(check (float 1e-9)) "overlap summed" 5.0 (Aggregate.volume m (Prefix.of_address 2));
  Alcotest.(check int) "distinct addrs" 3 (Aggregate.num_addresses m)

let test_aggregate_empty () =
  Alcotest.(check (float 1e-9)) "empty total" 0.0 (Aggregate.total Aggregate.empty);
  Alcotest.(check int) "no addresses" 0 (Aggregate.num_addresses Aggregate.empty)

let gen_flows =
  QCheck.Gen.(
    list_size (int_range 0 60)
      (map2 (fun a v -> flow (a land 0xFFFF) (float_of_int (v + 1))) (int_bound 0xFFFF)
         (int_bound 100)))

let gen_prefix16 =
  QCheck.Gen.(
    int_range 16 32 >>= fun length ->
    map (fun bits -> Prefix.make ~bits:(bits land 0xFFFF) ~length) (int_bound 0xFFFF))

let prop_aggregate_volume_model =
  QCheck.Test.make ~name:"aggregate volume = brute force sum" ~count:300
    (QCheck.make QCheck.Gen.(pair gen_flows gen_prefix16))
    (fun (flows, q) ->
      let a = Aggregate.of_flows flows in
      let expected =
        List.fold_left
          (fun acc (f : Flow.t) ->
            if Prefix.contains q f.Flow.addr then acc +. f.Flow.volume else acc)
          0.0 flows
      in
      Float.abs (Aggregate.volume a q -. expected) < 1e-6)

let prop_aggregate_children_sum =
  QCheck.Test.make ~name:"children volumes sum to parent" ~count:300
    (QCheck.make QCheck.Gen.(pair gen_flows gen_prefix16))
    (fun (flows, q) ->
      let a = Aggregate.of_flows flows in
      match Prefix.children q with
      | None -> true
      | Some (l, r) ->
        Float.abs (Aggregate.volume a q -. (Aggregate.volume a l +. Aggregate.volume a r)) < 1e-6)

(* ---- Topology ---- *)

let mk_topology ?(seed = 1) ?(num_switches = 8) ?(switches_per_task = 4) () =
  Topology.create (Rng.create seed) ~filter:(p "10.16.0.0/12") ~num_switches ~switches_per_task

let test_topology_subfilters () =
  let t = mk_topology () in
  let subs = Topology.subfilters t in
  Alcotest.(check int) "k subfilters" 4 (List.length subs);
  List.iter
    (fun (sub, _) -> Alcotest.(check int) "length filter+2" 14 (Prefix.length sub))
    subs;
  let switches = List.map snd subs in
  Alcotest.(check int) "distinct switches" 4 (List.length (List.sort_uniq compare switches))

let test_topology_switch_set () =
  let t = mk_topology () in
  Alcotest.(check int) "filter sees all 4" 4
    (Switch_id.Set.cardinal (Topology.switch_set t (p "10.16.0.0/12")));
  Alcotest.(check int) "subfilter sees 1" 1
    (Switch_id.Set.cardinal (Topology.switch_set t (p "10.16.0.0/14")));
  Alcotest.(check int) "deep prefix sees 1" 1
    (Switch_id.Set.cardinal (Topology.switch_set t (p "10.16.3.0/24")));
  Alcotest.(check int) "outside filter sees none" 0
    (Switch_id.Set.cardinal (Topology.switch_set t (p "11.0.0.0/12")))

let test_topology_switch_of_address () =
  let t = mk_topology () in
  (match Topology.switch_of_address t 0x0A100001 with
  | Some sw -> Alcotest.(check bool) "valid switch" true (sw >= 0 && sw < 8)
  | None -> Alcotest.fail "address inside filter must map");
  Alcotest.(check bool) "outside filter" true (Topology.switch_of_address t 0x0B000000 = None)

let test_topology_address_consistent_with_set () =
  let t = mk_topology ~seed:3 () in
  let rng = Rng.create 5 in
  for _ = 1 to 200 do
    let addr = 0x0A100000 + Rng.int rng (1 lsl 20) in
    match Topology.switch_of_address t addr with
    | Some sw ->
      let set = Topology.switch_set t (Prefix.of_address addr) in
      Alcotest.(check bool) "switch_set contains switch_of_address" true
        (Switch_id.Set.mem sw set)
    | None -> Alcotest.fail "inside filter"
  done

let test_topology_validation () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Topology.create: switches_per_task must be a power of two") (fun () ->
      ignore (mk_topology ~switches_per_task:3 ()));
  Alcotest.check_raises "more than switches"
    (Invalid_argument "Topology.create: switches_per_task exceeds num_switches") (fun () ->
      ignore (mk_topology ~num_switches:2 ~switches_per_task:4 ()))

(* ---- Profile ---- *)

let test_profile_default_valid () =
  match Profile.validate (Profile.default ~threshold:8.0) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_profile_invalid () =
  let base = Profile.default ~threshold:8.0 in
  let bad = { base with Profile.churn = 1.5 } in
  Alcotest.(check bool) "churn out of range" true (Result.is_error (Profile.validate bad));
  let bad = { base with Profile.heavy_alpha = 0.9 } in
  Alcotest.(check bool) "alpha too small" true (Result.is_error (Profile.validate bad));
  let bad =
    {
      base with
      Profile.phases =
        [ { Profile.start_epoch = 10; heavy_scale = 1.0 }; { Profile.start_epoch = 5; heavy_scale = 1.0 } ];
    }
  in
  Alcotest.(check bool) "unsorted phases" true (Result.is_error (Profile.validate bad))

(* ---- Generator ---- *)

let mk_generator ?(seed = 7) ?(profile = Profile.default ~threshold:8.0) () =
  let rng = Rng.create seed in
  let topology = mk_topology ~seed () in
  Generator.create (Rng.split rng) ~topology ~profile

let test_generator_deterministic () =
  let volumes g =
    List.init 5 (fun _ -> Aggregate.total (Generator.next g).Epoch_data.combined)
  in
  let a = volumes (mk_generator ()) and b = volumes (mk_generator ()) in
  Alcotest.(check (list (float 1e-9))) "same trace" a b

let test_generator_heavy_calibration () =
  (* The default profile should actually produce roughly heavy_count
     sources above the threshold. *)
  let profile = Profile.default ~threshold:8.0 in
  let g = mk_generator ~profile () in
  let data = Generator.next g in
  let heavies =
    Aggregate.fold data.Epoch_data.combined ~init:0 ~f:(fun acc f ->
        if f.Flow.volume > 8.0 then acc + 1 else acc)
  in
  Alcotest.(check bool)
    (Printf.sprintf "heavies %d near nominal %d" heavies profile.Profile.heavy_count)
    true
    (heavies >= profile.Profile.heavy_count / 2 && heavies <= profile.Profile.heavy_count * 2)

let test_generator_within_filter () =
  let g = mk_generator () in
  let data = Generator.next g in
  Aggregate.fold data.Epoch_data.combined ~init:() ~f:(fun () f ->
      Alcotest.(check bool) "flow inside filter" true
        (Prefix.contains (p "10.16.0.0/12") f.Flow.addr))

let test_generator_phases_scale_population () =
  let profile =
    {
      (Profile.steady ~threshold:8.0 ~heavy_count:20) with
      Profile.phases =
        [
          { Profile.start_epoch = 0; heavy_scale = 1.0 };
          { Profile.start_epoch = 10; heavy_scale = 2.0 };
        ];
    }
  in
  let g = mk_generator ~profile () in
  (* Epoch 9 (the 10th produced) is still before the phase boundary;
     epoch 10 doubles the population. *)
  for _ = 1 to 10 do
    ignore (Generator.next g)
  done;
  Alcotest.(check int) "before phase" 20 (Generator.active_heavy_count g);
  ignore (Generator.next g);
  Alcotest.(check int) "after phase doubles" 40 (Generator.active_heavy_count g)

let test_generator_per_switch_split () =
  let g = mk_generator () in
  let data = Generator.next g in
  let sum_parts =
    Switch_id.Map.fold (fun _ agg acc -> acc +. Aggregate.total agg) data.Epoch_data.per_switch 0.0
  in
  Alcotest.(check (float 1e-6)) "per-switch volumes sum to combined"
    (Aggregate.total data.Epoch_data.combined)
    sum_parts;
  Alcotest.(check bool) "several active switches" true
    (Switch_id.Set.cardinal (Epoch_data.active_switches data) >= 2)

let test_generator_skip () =
  let a = mk_generator () and b = mk_generator () in
  for _ = 1 to 5 do
    ignore (Generator.next a)
  done;
  Generator.skip b 5;
  Alcotest.(check int) "epoch advanced" (Generator.current_epoch a) (Generator.current_epoch b);
  (* The traces stay aligned: same epoch index produced next. *)
  let da = Generator.next a and db = Generator.next b in
  Alcotest.(check int) "same epoch index" da.Epoch_data.epoch db.Epoch_data.epoch

let test_generator_steady_no_churn () =
  let profile = Profile.steady ~threshold:8.0 ~heavy_count:10 in
  let g = mk_generator ~profile () in
  let d1 = Generator.next g in
  let d2 = Generator.next g in
  (* No churn, no jitter: the exact same addresses and volumes. *)
  let flows agg = Aggregate.fold agg ~init:[] ~f:(fun acc f -> f :: acc) in
  Alcotest.(check int) "same flow count"
    (List.length (flows d1.Epoch_data.combined))
    (List.length (flows d2.Epoch_data.combined));
  List.iter2
    (fun (a : Flow.t) (b : Flow.t) ->
      Alcotest.(check int) "same addr" a.Flow.addr b.Flow.addr;
      Alcotest.(check (float 1e-9)) "same volume" a.Flow.volume b.Flow.volume)
    (flows d1.Epoch_data.combined)
    (flows d2.Epoch_data.combined)

(* ---- Trace_io / Source ---- *)

module Trace_io = Dream_traffic.Trace_io
module Source = Dream_traffic.Source
module Epoch_data_m = Dream_traffic.Epoch_data

let roundtrip_epochs () =
  let g = mk_generator () in
  Trace_io.record g ~epochs:5

let test_trace_roundtrip () =
  let epochs = roundtrip_epochs () in
  let path = Filename.temp_file "dream_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save_file path epochs;
      match Trace_io.load_file path with
      | Error msg -> Alcotest.fail msg
      | Ok loaded ->
        Alcotest.(check int) "same epoch count" (List.length epochs) (List.length loaded);
        List.iter2
          (fun (a : Epoch_data_m.t) (b : Epoch_data_m.t) ->
            Alcotest.(check int) "epoch index" a.Epoch_data_m.epoch b.Epoch_data_m.epoch;
            Alcotest.(check (float 1e-3)) "total volume"
              (Aggregate.total a.Epoch_data_m.combined)
              (Aggregate.total b.Epoch_data_m.combined);
            Alcotest.(check int) "flow count"
              (Aggregate.num_addresses a.Epoch_data_m.combined)
              (Aggregate.num_addresses b.Epoch_data_m.combined))
          epochs loaded)

let read_of_string s =
  let path = Filename.temp_file "dream_trace_in" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let out = open_out path in
      output_string out s;
      close_out out;
      let input = open_in path in
      Fun.protect ~finally:(fun () -> close_in input) (fun () -> Trace_io.read input))

let test_trace_read_simple () =
  match read_of_string "# c\n0 0 10.0.0.1 2.5\n0 1 10.0.0.2 1.0\n2 0 10.0.0.1 3.0\n" with
  | Error msg -> Alcotest.fail msg
  | Ok [ e0; e2 ] ->
    Alcotest.(check int) "first epoch" 0 e0.Epoch_data_m.epoch;
    Alcotest.(check int) "second epoch" 2 e2.Epoch_data_m.epoch;
    Alcotest.(check (float 1e-9)) "epoch 0 volume" 3.5 (Aggregate.total e0.Epoch_data_m.combined);
    Alcotest.(check (float 1e-9)) "epoch 2 volume" 3.0 (Aggregate.total e2.Epoch_data_m.combined)
  | Ok _ -> Alcotest.fail "expected two epochs"

let test_trace_read_errors () =
  List.iter
    (fun body ->
      match read_of_string body with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted malformed trace: " ^ String.escaped body))
    [ "0 0 10.0.0.1\n"; "0 0 999.0.0.1 1.0\n"; "3 0 10.0.0.1 1.0\n1 0 10.0.0.1 1.0\n";
      "0 0 10.0.0.1 -5.0\n"; "0 0 10.0.0.1 nan\n"; "0 0 10.0.0.1 inf\n";
      "0 0 10.0.0.1 -inf\n" ]

let test_source_generator () =
  let s = Source.of_generator (mk_generator ()) in
  let a = Source.next s and b = Source.next s in
  Alcotest.(check int) "epochs count up" (a.Epoch_data_m.epoch + 1) b.Epoch_data_m.epoch

let test_source_replay_cycles () =
  let epochs = Array.of_list (roundtrip_epochs ()) in
  let s = Source.replay epochs in
  let first = Source.next s in
  for _ = 1 to Array.length epochs - 1 do
    ignore (Source.next s)
  done;
  let wrapped = Source.next s in
  Alcotest.(check (float 1e-9)) "wraps to the first epoch's traffic"
    (Aggregate.total first.Epoch_data_m.combined)
    (Aggregate.total wrapped.Epoch_data_m.combined);
  Alcotest.(check int) "epoch counter keeps rising" (Array.length epochs)
    wrapped.Epoch_data_m.epoch

let test_source_replay_no_cycle_goes_quiet () =
  let epochs = Array.of_list (roundtrip_epochs ()) in
  let s = Source.replay ~cycle:false epochs in
  for _ = 1 to Array.length epochs do
    ignore (Source.next s)
  done;
  let after = Source.next s in
  Alcotest.(check (float 1e-9)) "empty after the trace" 0.0
    (Aggregate.total after.Epoch_data_m.combined)

let test_source_replay_empty () =
  Alcotest.check_raises "empty trace" (Invalid_argument "Source.replay: empty trace") (fun () ->
      ignore (Source.replay [||]))

let () =
  Alcotest.run "dream.traffic"
    [
      ("flow", [ Alcotest.test_case "combine" `Quick test_flow_combine ]);
      ( "aggregate",
        [
          Alcotest.test_case "prefix volumes" `Quick test_aggregate_volume;
          Alcotest.test_case "counts" `Quick test_aggregate_counts;
          Alcotest.test_case "flows_in" `Quick test_aggregate_flows_in;
          Alcotest.test_case "merge" `Quick test_aggregate_merge;
          Alcotest.test_case "empty" `Quick test_aggregate_empty;
          QCheck_alcotest.to_alcotest prop_aggregate_volume_model;
          QCheck_alcotest.to_alcotest prop_aggregate_children_sum;
        ] );
      ( "topology",
        [
          Alcotest.test_case "subfilters" `Quick test_topology_subfilters;
          Alcotest.test_case "switch_set" `Quick test_topology_switch_set;
          Alcotest.test_case "switch_of_address" `Quick test_topology_switch_of_address;
          Alcotest.test_case "address consistent with set" `Quick
            test_topology_address_consistent_with_set;
          Alcotest.test_case "validation" `Quick test_topology_validation;
        ] );
      ( "profile",
        [
          Alcotest.test_case "default valid" `Quick test_profile_default_valid;
          Alcotest.test_case "invalid configs rejected" `Quick test_profile_invalid;
        ] );
      ( "trace-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "read simple" `Quick test_trace_read_simple;
          Alcotest.test_case "read errors" `Quick test_trace_read_errors;
        ] );
      ( "source",
        [
          Alcotest.test_case "generator wrapper" `Quick test_source_generator;
          Alcotest.test_case "replay cycles" `Quick test_source_replay_cycles;
          Alcotest.test_case "replay uncycled goes quiet" `Quick
            test_source_replay_no_cycle_goes_quiet;
          Alcotest.test_case "replay empty rejected" `Quick test_source_replay_empty;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "heavy calibration" `Quick test_generator_heavy_calibration;
          Alcotest.test_case "flows within filter" `Quick test_generator_within_filter;
          Alcotest.test_case "phases scale population" `Quick test_generator_phases_scale_population;
          Alcotest.test_case "per-switch split" `Quick test_generator_per_switch_split;
          Alcotest.test_case "skip" `Quick test_generator_skip;
          Alcotest.test_case "steady profile repeats" `Quick test_generator_steady_no_churn;
        ] );
    ]
