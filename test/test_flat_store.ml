(* Differential suite for the flat counter store: every Aggregate query
   must be BIT-identical (Int64.bits_of_float, not epsilon) between the
   boxed reference backend and the flat Bigarray backend, on adversarial
   inputs — duplicate addresses, adjacent prefixes, full- and zero-length
   prefixes, empty epochs, merges and batched reads.  This is the oracle
   that lets the simulator swap representations under seeded runs without
   moving a single figure byte. *)

module Rng = Dream_util.Rng
module Prefix = Dream_prefix.Prefix
module Flow = Dream_traffic.Flow
module Aggregate = Dream_traffic.Aggregate
module Flat_store = Dream_traffic.Flat_store
module Topology = Dream_traffic.Topology
module Profile = Dream_traffic.Profile
module Generator = Dream_traffic.Generator
module Epoch_data = Dream_traffic.Epoch_data
module Switch_id = Dream_traffic.Switch_id

let p = Prefix.of_string

let flow addr volume = Flow.make ~addr ~volume

let bits = Int64.bits_of_float

let same_float a b = Int64.equal (bits a) (bits b)

(* All flows an aggregate holds, in iteration order. *)
let dump a = List.rev (Aggregate.fold a ~init:[] ~f:(fun acc f -> f :: acc))

let same_flows la lb =
  List.length la = List.length lb
  && List.for_all2
       (fun (a : Flow.t) (b : Flow.t) ->
         a.Flow.addr = b.Flow.addr && same_float a.Flow.volume b.Flow.volume)
       la lb

let both f = (Aggregate.with_backend Aggregate.Reference f, Aggregate.with_backend Aggregate.Flat f)

(* ---- generators ---- *)

(* Clustered addresses: a handful of hot bases plus nearby offsets, so
   duplicate addresses and adjacent prefixes actually occur. *)
let gen_addr =
  QCheck.Gen.(
    oneof
      [
        map (fun a -> a land 0xFFFF) (int_bound 0xFFFF);
        map (fun off -> 0x0A00 + (off land 0xF)) (int_bound 0xF);
        return 0;
        return 0xFFFF;
      ])

(* Volumes drawn from sums of thirds: float addition over them is
   non-associative, so any reordering between backends shows up bitwise. *)
let gen_volume = QCheck.Gen.(map (fun v -> float_of_int (v + 1) /. 3.0) (int_bound 1000))

let gen_flows = QCheck.Gen.(list_size (int_range 0 80) (map2 flow gen_addr gen_volume))

let gen_prefix =
  QCheck.Gen.(
    int_range 16 32 >>= fun length ->
    map (fun b -> Prefix.make ~bits:(b land 0xFFFF) ~length) (int_bound 0xFFFF))

let gen_prefixes = QCheck.Gen.(list_size (int_range 0 24) gen_prefix)

(* ---- properties ---- *)

let prop_build_queries =
  QCheck.Test.make ~name:"flat vs reference: volume/count/total bitwise" ~count:500
    (QCheck.make QCheck.Gen.(pair gen_flows gen_prefix))
    (fun (flows, q) ->
      let ra, fa = both (fun () -> Aggregate.of_flows flows) in
      same_float (Aggregate.volume ra q) (Aggregate.volume fa q)
      && Aggregate.count_addresses ra q = Aggregate.count_addresses fa q
      && same_float (Aggregate.total ra) (Aggregate.total fa)
      && Aggregate.num_addresses ra = Aggregate.num_addresses fa
      && same_flows (dump ra) (dump fa))

let prop_read_prefixes =
  QCheck.Test.make ~name:"flat vs reference: batched reads bitwise" ~count:500
    (QCheck.make QCheck.Gen.(pair gen_flows gen_prefixes))
    (fun (flows, rules) ->
      (* Both TCAM order (sorted, the monotonic-lo fast path) and an
         arbitrary order must agree element-wise. *)
      let sorted_rules = List.sort Prefix.compare rules in
      let ra, fa = both (fun () -> Aggregate.of_flows flows) in
      let same rules =
        let rr = Aggregate.read_prefixes ra rules in
        let fr = Aggregate.read_prefixes fa rules in
        List.length rr = List.length fr
        && List.for_all2
             (fun (pa, va) (pb, vb) -> Prefix.equal pa pb && same_float va vb)
             rr fr
      in
      same sorted_rules && same rules)

let prop_merge =
  QCheck.Test.make ~name:"flat vs reference: merge bitwise" ~count:500
    (QCheck.make QCheck.Gen.(pair gen_flows gen_flows))
    (fun (fl1, fl2) ->
      let merge () = Aggregate.merge (Aggregate.of_flows fl1) (Aggregate.of_flows fl2) in
      let rm, fm = both merge in
      same_flows (dump rm) (dump fm) && same_float (Aggregate.total rm) (Aggregate.total fm))

let prop_merge_all =
  QCheck.Test.make ~name:"flat vs reference: merge_all bitwise" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 6) gen_flows))
    (fun flow_lists ->
      let merged () = Aggregate.merge_all (List.map Aggregate.of_flows flow_lists) in
      let rm, fm = both merged in
      same_flows (dump rm) (dump fm))

let prop_fold_in =
  QCheck.Test.make ~name:"flat vs reference: fold_in order and sums" ~count:300
    (QCheck.make QCheck.Gen.(pair gen_flows gen_prefix))
    (fun (flows, q) ->
      let ra, fa = both (fun () -> Aggregate.of_flows flows) in
      let sum a = Aggregate.fold_in a q ~init:0.0 ~f:(fun acc f -> acc +. f.Flow.volume) in
      same_float (sum ra) (sum fa)
      && same_flows (Aggregate.flows_in ra q) (Aggregate.flows_in fa q))

(* ---- directed edge cases ---- *)

let check_identical flows queries =
  let ra, fa = both (fun () -> Aggregate.of_flows flows) in
  Alcotest.(check bool) "flows identical" true (same_flows (dump ra) (dump fa));
  List.iter
    (fun q ->
      Alcotest.(check bool)
        (Printf.sprintf "volume at %s" (Prefix.to_string q))
        true
        (same_float (Aggregate.volume ra q) (Aggregate.volume fa q)))
    queries

let test_empty_epoch () =
  check_identical [] [ Prefix.root; p "10.0.0.0/8"; p "10.0.0.1/32" ];
  let re, fe = both (fun () -> Aggregate.of_flows []) in
  Alcotest.(check int) "empty count" 0 (Aggregate.num_addresses fe);
  Alcotest.(check bool) "empty merge" true
    (same_flows (dump (Aggregate.merge re fe)) (dump (Aggregate.merge fe re)))

let test_duplicates () =
  (* Duplicate addresses force the combine path: sums must still agree
     bitwise because both backends add volumes left to right. *)
  let flows = [ flow 7 0.1; flow 7 0.2; flow 7 0.4; flow 3 1.0; flow 3 (1.0 /. 3.0) ] in
  check_identical flows [ Prefix.root; Prefix.of_address 7; Prefix.of_address 3 ]

let test_adjacent_prefixes () =
  let flows = [ flow 0x0A00 1.5; flow 0x0A01 2.5; flow 0x0A02 0.25; flow 0x0A03 4.0 ] in
  check_identical flows
    [
      Prefix.make ~bits:0x0A00 ~length:31;
      Prefix.make ~bits:0x0A02 ~length:31;
      Prefix.make ~bits:0x0A00 ~length:30;
    ]

let test_extreme_lengths () =
  let flows = [ flow 0 1.0; flow 0xFFFF 2.0; flow 0x8000 4.0 ] in
  (* Zero-length (the whole space) and full-length (single address). *)
  check_identical flows
    [ Prefix.root; Prefix.of_address 0; Prefix.of_address 0xFFFF; Prefix.of_address 0x8000 ]

let test_mixed_backend_merge () =
  (* A Flat aggregate merged with a Reference one takes the combine path
     and must equal the all-flat and all-reference merges bitwise. *)
  let fl1 = [ flow 1 0.1; flow 2 0.2 ] and fl2 = [ flow 2 0.4; flow 9 1.0 ] in
  let a_flat = Aggregate.with_backend Aggregate.Flat (fun () -> Aggregate.of_flows fl1) in
  let b_ref = Aggregate.with_backend Aggregate.Reference (fun () -> Aggregate.of_flows fl2) in
  let mixed = Aggregate.merge a_flat b_ref in
  let rm, fm =
    both (fun () -> Aggregate.merge (Aggregate.of_flows fl1) (Aggregate.of_flows fl2))
  in
  Alcotest.(check bool) "mixed = flat" true (same_flows (dump mixed) (dump fm));
  Alcotest.(check bool) "mixed = reference" true (same_flows (dump mixed) (dump rm))

(* ---- cumulative-sum internals ---- *)

let test_flat_store_cumulative () =
  let flows = [ flow 1 0.25; flow 4 0.5; flow 9 (1.0 /. 3.0); flow 12 2.0 ] in
  let fs = Flat_store.of_sorted flows in
  (* range/volume agree with a manual prefix walk over the sorted flows. *)
  let lo, hi = Flat_store.range fs (p "0.0.0.0/28") in
  Alcotest.(check int) "range lo" 0 lo;
  Alcotest.(check int) "range hi" 4 hi;
  let lo', hi' = Flat_store.range fs (p "0.0.0.0/29") in
  Alcotest.(check int) "tighter range lo" 0 lo';
  Alcotest.(check int) "tighter range hi" 2 hi';
  let manual = List.fold_left (fun acc (f : Flow.t) -> acc +. f.Flow.volume) 0.0 flows in
  Alcotest.(check bool) "total bitwise" true (same_float manual (Flat_store.total fs))

(* ---- sortedness fast path ---- *)

let test_generator_hits_fast_path () =
  (* The generator emits per-switch flows already sorted and distinct; the
     aggregate build must take the no-sort fast path, not re-run combine. *)
  let rng = Rng.create 42 in
  let topology =
    Topology.create (Rng.split rng) ~filter:(p "10.16.0.0/12") ~num_switches:4
      ~switches_per_task:4
  in
  let gen = Generator.create (Rng.split rng) ~topology ~profile:(Profile.default ~threshold:8.0) in
  Aggregate.reset_stats ();
  let data = Generator.next gen in
  let stats = Aggregate.stats () in
  Alcotest.(check bool) "fast path hit" true (stats.Aggregate.sorted_fast_path > 0);
  Alcotest.(check int) "no sort fallbacks" 0 stats.Aggregate.sort_fallbacks;
  (* And the data is actually non-trivial, or the assertion is vacuous. *)
  let total =
    Switch_id.Set.fold
      (fun sw acc -> acc +. Aggregate.total (Epoch_data.switch_view data sw))
      (Epoch_data.active_switches data) 0.0
  in
  Alcotest.(check bool) "epoch carries traffic" true (total > 0.0)

let test_backend_flag_restored () =
  let before = Aggregate.current_backend () in
  (try
     Aggregate.with_backend Aggregate.Reference (fun () -> raise Exit)
   with Exit -> ());
  Alcotest.(check bool) "backend restored on exception" true
    (match (before, Aggregate.current_backend ()) with
    | Aggregate.Flat, Aggregate.Flat | Aggregate.Reference, Aggregate.Reference -> true
    | _ -> false)

let () =
  Alcotest.run "dream.flat_store"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_build_queries;
          QCheck_alcotest.to_alcotest prop_read_prefixes;
          QCheck_alcotest.to_alcotest prop_merge;
          QCheck_alcotest.to_alcotest prop_merge_all;
          QCheck_alcotest.to_alcotest prop_fold_in;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "empty epoch" `Quick test_empty_epoch;
          Alcotest.test_case "duplicate addresses" `Quick test_duplicates;
          Alcotest.test_case "adjacent prefixes" `Quick test_adjacent_prefixes;
          Alcotest.test_case "zero- and full-length prefixes" `Quick test_extreme_lengths;
          Alcotest.test_case "mixed-backend merge" `Quick test_mixed_backend_merge;
          Alcotest.test_case "cumulative sums" `Quick test_flat_store_cumulative;
        ] );
      ( "fast-path",
        [
          Alcotest.test_case "generator output skips the sort" `Quick
            test_generator_hits_fast_path;
          Alcotest.test_case "with_backend restores on raise" `Quick test_backend_flag_restored;
        ] );
    ]
