(* Tests for the degraded-mode control loop: the circuit-breaker state
   machine (including probe-failure re-opening and heal hints), sustained
   adversity in the fault model (partitions, stragglers, storms), the
   zero-diff regression guard, deadline shedding with bounded staleness,
   determinism under a fixed seed, and the 25%-partition acceptance
   experiment. *)

module Rng = Dream_util.Rng
module Codec = Dream_util.Codec
module Prefix = Dream_prefix.Prefix
module Topology = Dream_traffic.Topology
module Generator = Dream_traffic.Generator
module Profile = Dream_traffic.Profile
module Fault_model = Dream_fault.Fault_model
module Breaker = Dream_switch.Breaker
module Task_spec = Dream_tasks.Task_spec
module Allocator = Dream_alloc.Allocator
module Dream_allocator = Dream_alloc.Dream_allocator
module Config = Dream_core.Config
module Metrics = Dream_core.Metrics
module Controller = Dream_core.Controller
module Scenario = Dream_workload.Scenario
module Experiment = Dream_sim.Experiment
module Degraded_mode = Dream_sim.Degraded_mode

(* ---- Breaker state machine ---- *)

let check_state msg expected br =
  Alcotest.(check string) msg (Breaker.state_to_string expected)
    (Breaker.state_to_string (Breaker.state br))

let test_breaker_trips_at_threshold () =
  let br = Breaker.create Breaker.default_config in
  check_state "fresh" Breaker.Closed br;
  Breaker.record_failure br;
  Breaker.record_failure br;
  check_state "below threshold" Breaker.Closed br;
  Alcotest.(check bool) "still allowing" true (Breaker.allow br);
  Breaker.record_failure br;
  check_state "third failure trips" Breaker.Open br;
  Alcotest.(check bool) "open blocks" false (Breaker.allow br);
  Alcotest.(check int) "one open" 1 (Breaker.opens br)

let test_breaker_success_resets_failures () =
  let br = Breaker.create Breaker.default_config in
  Breaker.record_failure br;
  Breaker.record_failure br;
  Breaker.record_success br;
  Breaker.record_failure br;
  Breaker.record_failure br;
  check_state "streak broken by success" Breaker.Closed br;
  Breaker.record_failure br;
  check_state "fresh streak of three trips" Breaker.Open br

let test_breaker_cooldown_and_probe () =
  let br = Breaker.create { Breaker.failure_threshold = 1; cooldown_epochs = 3 } in
  Breaker.record_failure br;
  check_state "tripped" Breaker.Open br;
  Breaker.begin_epoch br;
  Breaker.begin_epoch br;
  check_state "cooling down" Breaker.Open br;
  Breaker.begin_epoch br;
  check_state "cooldown elapsed" Breaker.Half_open br;
  Alcotest.(check int) "one probe" 1 (Breaker.probes br);
  Alcotest.(check bool) "half-open allows the probe" true (Breaker.allow br);
  Breaker.record_success br;
  check_state "probe success closes" Breaker.Closed br

let test_breaker_probe_failure_reopens () =
  let br = Breaker.create { Breaker.failure_threshold = 1; cooldown_epochs = 2 } in
  Breaker.record_failure br;
  Breaker.begin_epoch br;
  Breaker.begin_epoch br;
  check_state "probing" Breaker.Half_open br;
  Breaker.record_failure br;
  check_state "probe failure re-opens" Breaker.Open br;
  Alcotest.(check int) "re-open counted" 2 (Breaker.opens br);
  (* The re-opened breaker owes a full cooldown again. *)
  Breaker.begin_epoch br;
  check_state "cooling again" Breaker.Open br;
  Breaker.begin_epoch br;
  check_state "second probe window" Breaker.Half_open br;
  Alcotest.(check int) "second probe counted" 2 (Breaker.probes br)

let test_breaker_failures_while_open_ignored () =
  let br = Breaker.create { Breaker.failure_threshold = 1; cooldown_epochs = 2 } in
  Breaker.record_failure br;
  Breaker.record_failure br;
  Breaker.record_failure br;
  Alcotest.(check int) "no re-trip while open" 1 (Breaker.opens br);
  Breaker.begin_epoch br;
  Breaker.begin_epoch br;
  check_state "cooldown unaffected by ignored failures" Breaker.Half_open br

let test_breaker_hint_probe () =
  let br = Breaker.create Breaker.default_config in
  Breaker.hint_probe br;
  check_state "hint on closed is a no-op" Breaker.Closed br;
  Breaker.record_failure br;
  Breaker.record_failure br;
  Breaker.record_failure br;
  check_state "tripped" Breaker.Open br;
  Breaker.hint_probe br;
  Breaker.begin_epoch br;
  check_state "hint skips the cooldown" Breaker.Half_open br

let test_breaker_config_validated () =
  Alcotest.check_raises "threshold 0"
    (Invalid_argument "Breaker: failure_threshold must be >= 1") (fun () ->
      ignore (Breaker.create { Breaker.failure_threshold = 0; cooldown_epochs = 4 }));
  Alcotest.check_raises "cooldown 0" (Invalid_argument "Breaker: cooldown_epochs must be >= 1")
    (fun () -> ignore (Breaker.create { Breaker.failure_threshold = 3; cooldown_epochs = 0 }))

let test_breaker_codec_roundtrip () =
  let br = Breaker.create { Breaker.failure_threshold = 2; cooldown_epochs = 3 } in
  Breaker.record_failure br;
  Breaker.record_failure br;
  Breaker.begin_epoch br;
  let w = Codec.writer () in
  Breaker.emit w br;
  let r = Codec.reader_of_string (Codec.contents w) in
  let br' = Breaker.parse r in
  check_state "state survives" (Breaker.state br) br';
  Alcotest.(check int) "opens survive" (Breaker.opens br) (Breaker.opens br');
  Alcotest.(check int) "probes survive" (Breaker.probes br) (Breaker.probes br');
  (* Same future: both cool down to the probe at the same epoch. *)
  Breaker.begin_epoch br;
  Breaker.begin_epoch br;
  Breaker.begin_epoch br';
  Breaker.begin_epoch br';
  check_state "parsed breaker follows the same schedule" (Breaker.state br) br'

(* ---- Sustained adversity in the fault model ---- *)

let quarter_spec seed =
  {
    Fault_model.zero with
    Fault_model.seed;
    partition_rate = 1.0;
    mean_partition = 6.0;
    partition_groups = 4;
    partition_eligible = 1;
  }

let test_partition_only_eligible_groups () =
  let fm = Fault_model.create (quarter_spec 3) ~num_switches:8 in
  for _ = 1 to 50 do
    ignore (Fault_model.begin_epoch fm);
    for sw = 0 to 7 do
      if sw mod 4 <> 0 then
        Alcotest.(check bool)
          (Printf.sprintf "switch %d never partitions" sw)
          false
          (Fault_model.is_partitioned fm sw)
    done;
    Alcotest.(check bool) "group-correlated" true
      (Fault_model.is_partitioned fm 0 = Fault_model.is_partitioned fm 4)
  done

let test_partition_schedule_deterministic () =
  let windows seed =
    let fm = Fault_model.create (quarter_spec seed) ~num_switches:8 in
    List.init 80 (fun _ ->
        ignore (Fault_model.begin_epoch fm);
        Fault_model.partitioned_count fm)
  in
  Alcotest.(check (list int)) "same seed, same windows" (windows 9) (windows 9);
  let fm = Fault_model.create (quarter_spec 9) ~num_switches:8 in
  let partitioned_epochs = ref 0 in
  for _ = 1 to 80 do
    ignore (Fault_model.begin_epoch fm);
    if Fault_model.partitioned_count fm > 0 then incr partitioned_epochs
  done;
  Alcotest.(check bool) "rate-1 partitions dominate" true (!partitioned_epochs > 40)

let test_stragglers_chosen_once () =
  let spec =
    {
      Fault_model.zero with
      Fault_model.seed = 5;
      straggler_fraction = 0.5;
      straggler_slowdown = 3.0;
    }
  in
  let fm = Fault_model.create spec ~num_switches:8 in
  Alcotest.(check int) "half the fleet" 4 (Fault_model.straggler_count fm);
  let chosen = List.init 8 (fun sw -> Fault_model.is_straggler fm sw) in
  ignore (Fault_model.begin_epoch fm);
  Alcotest.(check (list bool)) "selection is stable across epochs" chosen
    (List.init 8 (fun sw -> Fault_model.is_straggler fm sw));
  List.iteri
    (fun sw straggler ->
      let f = Fault_model.latency_factor fm sw in
      if straggler then Alcotest.(check (float 1e-9)) "slowdown factor" 3.0 f
      else Alcotest.(check (float 1e-9)) "unit factor" 1.0 f)
    chosen;
  let fm' = Fault_model.create spec ~num_switches:8 in
  Alcotest.(check (list bool)) "same seed, same stragglers" chosen
    (List.init 8 (fun sw -> Fault_model.is_straggler fm' sw))

(* ---- Controller in degraded mode ---- *)

let mk_controller ?(config = Config.default) ?(capacity = 128) ?(num_switches = 4)
    ?(strategy = Allocator.Dream Dream_allocator.default_config) () =
  Controller.create ~config ~strategy ~num_switches ~capacity

let submit_task controller rng ~filter_index ~duration =
  let filter = Prefix.nth_descendant Prefix.root ~length:12 (filter_index * 53) in
  let num_switches = Controller.num_switches controller in
  let topology =
    Topology.create rng ~filter ~num_switches ~switches_per_task:(min 4 num_switches)
  in
  let spec =
    Task_spec.make ~kind:Task_spec.Heavy_hitter ~filter ~leaf_length:24 ~threshold:8.0 ()
  in
  let generator =
    Generator.create (Rng.split rng) ~topology ~profile:(Profile.default ~threshold:8.0)
  in
  Controller.submit controller ~spec ~topology
    ~source:(Dream_traffic.Source.of_generator generator)
    ~duration

type run_result = {
  summary : Metrics.summary;
  records : Metrics.record list;
  modelled_delays : (float * float) list;
}

let run_controller config =
  let controller = mk_controller ~config () in
  let rng = Rng.create 21 in
  for i = 0 to 7 do
    ignore (submit_task controller rng ~filter_index:i ~duration:25)
  done;
  Controller.run controller ~epochs:40;
  Controller.finalize controller;
  {
    summary = Controller.summary controller;
    records = Controller.records controller;
    modelled_delays =
      List.map
        (fun (s : Controller.delay_sample) -> (s.Controller.fetch_ms, s.Controller.save_ms))
        (Controller.delay_samples controller);
  }

let test_degraded_zero_diff () =
  (* The acceptance guarantee: at adversity zero the full degraded-mode
     path — breakers armed, deadline scheduler sorting, shed decisions
     evaluated — must be byte-identical to the seed behaviour. *)
  let plain = run_controller Config.default in
  let armed =
    run_controller
      {
        Config.default with
        Config.faults = Some Fault_model.zero;
        degraded = Some Config.default_degraded;
      }
  in
  Alcotest.(check bool) "same records" true (plain.records = armed.records);
  Alcotest.(check bool) "same summary" true (plain.summary = armed.summary);
  Alcotest.(check bool) "same modelled delays" true (plain.modelled_delays = armed.modelled_delays);
  Alcotest.(check bool) "robustness counters all zero" true
    (armed.summary.Metrics.robustness = Metrics.no_faults);
  let adversity_zero =
    run_controller
      {
        Config.default with
        Config.faults = Some (Fault_model.adversity 0.0);
        degraded = Some Config.default_degraded;
      }
  in
  Alcotest.(check bool) "adversity 0 summary identical" true
    (plain.summary = adversity_zero.summary);
  Alcotest.(check bool) "adversity 0 records identical" true
    (plain.records = adversity_zero.records)

let adversity_config ?(level = 0.8) seed =
  {
    Config.default with
    Config.faults = Some (Fault_model.adversity ~seed level);
    degraded = Some Config.default_degraded;
  }

let test_degraded_deterministic () =
  let a = run_controller (adversity_config 5) in
  let b = run_controller (adversity_config 5) in
  Alcotest.(check bool) "same records" true (a.records = b.records);
  Alcotest.(check bool) "same summary" true (a.summary = b.summary);
  Alcotest.(check bool) "same modelled delays" true (a.modelled_delays = b.modelled_delays);
  let c = run_controller (adversity_config 6) in
  Alcotest.(check bool) "different seed diverges" true
    (a.records <> c.records || a.summary <> c.summary)

let test_breaker_surface () =
  let controller = mk_controller ~config:(adversity_config 7) () in
  Alcotest.(check bool) "degraded mode armed" true (Controller.degraded_mode controller);
  Alcotest.(check int) "one breaker per switch" (Controller.num_switches controller)
    (Array.length (Controller.breaker_states controller));
  let plain = mk_controller () in
  Alcotest.(check bool) "plain runs without breakers" false (Controller.degraded_mode plain);
  Alcotest.(check int) "no breakers outside degraded mode" 0
    (Array.length (Controller.breaker_states plain));
  (* Faults without a degraded config keep the plain retry loop too. *)
  let faults_only =
    mk_controller ~config:{ Config.default with Config.faults = Some (Fault_model.uniform 0.1) } ()
  in
  Alcotest.(check bool) "faults alone do not arm breakers" false
    (Controller.degraded_mode faults_only)

let test_deadline_sheds_with_bounded_staleness () =
  (* A deadline a fraction of one fetch round forces the scheduler to shed
     every epoch; bounded staleness must still push every task's fetch
     through within [shed_max_staleness] epochs. *)
  let bound = 3 in
  let config =
    {
      Config.default with
      Config.faults = Some Fault_model.zero;
      degraded =
        Some
          {
            Config.default_degraded with
            Config.deadline_fraction = 0.01;
            shed_max_staleness = bound;
          };
    }
  in
  let controller = mk_controller ~config () in
  let rng = Rng.create 33 in
  for i = 0 to 5 do
    ignore (submit_task controller rng ~filter_index:i ~duration:30)
  done;
  let max_seen = ref 0 in
  for _ = 1 to 30 do
    Controller.tick controller;
    List.iter (fun s -> max_seen := max !max_seen s) (Controller.staleness_levels controller)
  done;
  let rob = Controller.robustness controller in
  Alcotest.(check bool) "sheds happened" true (rob.Metrics.sheds > 0);
  Alcotest.(check bool) "staleness stayed within the bound"
    true (!max_seen <= bound);
  Alcotest.(check bool) "bounded staleness forced fetches through" true (!max_seen > 0);
  Controller.finalize controller

let test_storm_pending_surface () =
  let config =
    {
      Config.default with
      Config.faults =
        Some { Fault_model.zero with Fault_model.seed = 3; storm_rate = 1.0; storm_size = 5 };
      degraded = Some Config.default_degraded;
    }
  in
  let controller = mk_controller ~config () in
  Alcotest.(check int) "quiet before the first tick" 0 (Controller.storm_tasks_pending controller);
  Controller.tick controller;
  Alcotest.(check int) "storm surfaced to the driver" 5
    (Controller.storm_tasks_pending controller)

(* ---- Checkpointing degraded state ---- *)

let test_snapshot_restores_breakers () =
  let config = adversity_config ~level:1.0 17 in
  let controller = mk_controller ~config () in
  let rng = Rng.create 41 in
  for i = 0 to 5 do
    ignore (submit_task controller rng ~filter_index:i ~duration:30)
  done;
  Controller.run controller ~epochs:25;
  let doc = Controller.snapshot controller in
  match Controller.restore doc with
  | Error msg -> Alcotest.failf "restore failed: %s" msg
  | Ok restored ->
    Alcotest.(check bool) "degraded mode survives restore" true
      (Controller.degraded_mode restored);
    let states c =
      Array.to_list (Array.map Breaker.state_to_string (Controller.breaker_states c))
    in
    Alcotest.(check (list string)) "breaker states survive" (states controller) (states restored);
    Alcotest.(check (list int)) "staleness levels survive"
      (Controller.staleness_levels controller)
      (Controller.staleness_levels restored);
    (* Bit-identical future: the restored controller replays the same
       degraded-mode schedule. *)
    Controller.run controller ~epochs:15;
    Controller.run restored ~epochs:15;
    Controller.finalize controller;
    Controller.finalize restored;
    Alcotest.(check bool) "same summary after resume" true
      (Controller.summary controller = Controller.summary restored);
    Alcotest.(check (list string)) "same breaker states after resume" (states controller)
      (states restored)

(* ---- The degraded-mode sweep and its acceptance pair ---- *)

let small =
  {
    Scenario.default with
    Scenario.num_switches = 4;
    switches_per_task = 4;
    num_tasks = 12;
    arrival_window = 60;
    mean_duration = 40;
    min_duration = 20;
    total_epochs = 120;
    capacity = 512;
  }

let test_quarter_partition_acceptance () =
  (* The figure's own scale: the tiny [small] scenario has too few tasks
     for the 15% budget to be meaningful (one task's fate swings the mean
     by more than the whole budget). *)
  let scenario = Dream_sim.Fig06.quick_scale Scenario.default in
  let q = Degraded_mode.run_quarter scenario Experiment.dream_strategy in
  let b = q.Degraded_mode.q_baseline and p = q.Degraded_mode.q_partition in
  Alcotest.(check int) "never exceeds the epoch deadline" 0
    p.Degraded_mode.deadline_violations;
  Alcotest.(check bool) "partition epochs actually happened" true
    (p.Degraded_mode.summary.Metrics.robustness.Metrics.partition_epochs > 0);
  let floor = 0.85 *. b.Degraded_mode.summary.Metrics.mean_satisfaction in
  Alcotest.(check bool)
    (Printf.sprintf "satisfaction %.1f within 15%% of baseline %.1f"
       p.Degraded_mode.summary.Metrics.mean_satisfaction
       b.Degraded_mode.summary.Metrics.mean_satisfaction)
    true
    (p.Degraded_mode.summary.Metrics.mean_satisfaction >= floor)

let test_sweep_zero_level_parity () =
  (* In the sweep itself, level 0 degraded and baseline points must be the
     same run byte for byte. *)
  let points = Degraded_mode.sweep ~levels:[ 0.0 ] small Experiment.dream_strategy in
  match points with
  | [ degraded; baseline ] ->
    Alcotest.(check bool) "identical summaries" true
      (degraded.Degraded_mode.summary = baseline.Degraded_mode.summary);
    Alcotest.(check int) "no sheds" 0
      degraded.Degraded_mode.summary.Metrics.robustness.Metrics.sheds;
    Alcotest.(check int) "no staleness" 0 degraded.Degraded_mode.max_staleness
  | _ -> Alcotest.fail "sweep must yield one degraded and one baseline point per level"

let () =
  Alcotest.run "dream.degraded"
    [
      ( "breaker",
        [
          Alcotest.test_case "trips at threshold" `Quick test_breaker_trips_at_threshold;
          Alcotest.test_case "success resets failures" `Quick test_breaker_success_resets_failures;
          Alcotest.test_case "cooldown then probe" `Quick test_breaker_cooldown_and_probe;
          Alcotest.test_case "probe failure re-opens" `Quick test_breaker_probe_failure_reopens;
          Alcotest.test_case "failures while open ignored" `Quick
            test_breaker_failures_while_open_ignored;
          Alcotest.test_case "heal hint skips cooldown" `Quick test_breaker_hint_probe;
          Alcotest.test_case "config validated" `Quick test_breaker_config_validated;
          Alcotest.test_case "codec roundtrip" `Quick test_breaker_codec_roundtrip;
        ] );
      ( "adversity-model",
        [
          Alcotest.test_case "only eligible groups partition" `Quick
            test_partition_only_eligible_groups;
          Alcotest.test_case "partition schedule deterministic" `Quick
            test_partition_schedule_deterministic;
          Alcotest.test_case "stragglers chosen once" `Quick test_stragglers_chosen_once;
        ] );
      ( "controller",
        [
          Alcotest.test_case "zero-diff at adversity 0" `Quick test_degraded_zero_diff;
          Alcotest.test_case "deterministic under fixed seed" `Quick test_degraded_deterministic;
          Alcotest.test_case "breaker surface" `Quick test_breaker_surface;
          Alcotest.test_case "deadline sheds, staleness bounded" `Quick
            test_deadline_sheds_with_bounded_staleness;
          Alcotest.test_case "storms surfaced to the driver" `Quick test_storm_pending_surface;
          Alcotest.test_case "snapshot restores breakers" `Quick test_snapshot_restores_breakers;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "25% partition acceptance" `Slow test_quarter_partition_acceptance;
          Alcotest.test_case "level-0 parity" `Slow test_sweep_zero_level_parity;
        ] );
    ]
