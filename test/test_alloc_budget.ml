(* Allocation-budget regression: every profiled control-loop phase must
   stay under the per-phase word budgets committed in
   bench/baseline/ALLOC_BUDGET.json, under BOTH store backends.  Seeded
   runs allocate deterministically, so a budget miss is a real regression
   (some scratch structure started being rebuilt per epoch), not noise —
   the budgets carry ~15% headroom over the measured values recorded next
   to them only so that small, deliberate feature work does not have to
   touch the file. *)

module Scenario = Dream_workload.Scenario
module Config = Dream_core.Config
module Fault_model = Dream_fault.Fault_model
module Telemetry = Dream_obs.Telemetry
module Profile = Dream_obs.Profile
module Gc_stats = Dream_obs.Gc_stats
module Json = Dream_obs.Json
module Aggregate = Dream_traffic.Aggregate
module Experiment = Dream_sim.Experiment

(* dune runs tests from _build/default/test; a manual `./test_….exe` from
   the repo root also works thanks to the second candidate. *)
let budget_file =
  let candidates = [ "../bench/baseline/ALLOC_BUDGET.json"; "bench/baseline/ALLOC_BUDGET.json" ] in
  match List.find_opt Sys.file_exists candidates with
  | Some f -> f
  | None -> "../bench/baseline/ALLOC_BUDGET.json"

(* Must match the "measured" scenario documented in the budget file. *)
let epochs = 80

let scenario = { Scenario.default with Scenario.num_tasks = 35; total_epochs = epochs }

let read_budgets backend_key =
  let contents = In_channel.with_open_text budget_file In_channel.input_all in
  match Json.of_string contents with
  | Error e -> Alcotest.failf "unreadable %s: %s" budget_file e
  | Ok j -> begin
    match Option.bind (Json.member "budgets" j) (Json.member backend_key) with
    | None -> Alcotest.failf "%s: no budgets.%s object" budget_file backend_key
    | Some b ->
      List.map
        (fun phase ->
          match Option.bind (Json.member phase b) Json.to_float with
          | Some v -> (phase, v)
          | None -> Alcotest.failf "%s: missing budgets.%s.%s" budget_file backend_key phase)
        [ "epoch"; "configure"; "estimate"; "allocate" ]
  end

let span_of_phase = function "epoch" -> "epoch" | phase -> "epoch/" ^ phase

let alloc_words (r : Gc_stats.reading) =
  r.Gc_stats.minor_words +. r.Gc_stats.major_words -. r.Gc_stats.promoted_words

let profiled_run backend =
  let profile = Profile.create () in
  let config =
    {
      Config.default with
      Config.faults = Some (Fault_model.uniform ~seed:97 0.05);
      telemetry = Some (Telemetry.create ~profile ());
      store_backend = backend;
    }
  in
  ignore (Experiment.run ~config scenario Experiment.dream_strategy);
  profile

let check_backend backend_key backend () =
  let profile = profiled_run backend in
  List.iter
    (fun (phase, budget) ->
      match Profile.find profile (span_of_phase phase) with
      | None -> Alcotest.failf "no %s span in profile" (span_of_phase phase)
      | Some stat ->
        let per_epoch = alloc_words stat.Profile.gc /. float_of_int epochs in
        if per_epoch > budget then
          Alcotest.failf "%s/%s allocates %.0f words/epoch, budget %.0f" backend_key phase
            per_epoch budget)
    (read_budgets backend_key)

let () =
  Alcotest.run "dream.alloc_budget"
    [
      ( "budgets",
        [
          Alcotest.test_case "flat backend under budget" `Slow
            (check_backend "flat" Aggregate.Flat);
          Alcotest.test_case "reference backend under budget" `Slow
            (check_backend "reference" Aggregate.Reference);
        ] );
    ]
