(* Tests for crash consistency: journal encode/decode (torn tails,
   corruption), checkpoint/restore bit-identical resumption, fail-over
   recovery with journal replay and switch reconciliation, and the runtime
   invariant checker. *)

module Rng = Dream_util.Rng
module Prefix = Dream_prefix.Prefix
module Topology = Dream_traffic.Topology
module Generator = Dream_traffic.Generator
module Profile = Dream_traffic.Profile
module Fault_model = Dream_fault.Fault_model
module Switch = Dream_switch.Switch
module Tcam = Dream_switch.Tcam
module Task_spec = Dream_tasks.Task_spec
module Allocator = Dream_alloc.Allocator
module Dream_allocator = Dream_alloc.Dream_allocator
module Journal = Dream_recovery.Journal
module Invariant = Dream_recovery.Invariant
module Config = Dream_core.Config
module Metrics = Dream_core.Metrics
module Controller = Dream_core.Controller
module Crash_recovery = Dream_sim.Crash_recovery
module Scenario = Dream_workload.Scenario

(* ---- journal codec ---- *)

let sample_entries () =
  let rng = Rng.create 3 in
  let filter = Prefix.nth_descendant Prefix.root ~length:12 17 in
  let topology = Topology.create rng ~filter ~num_switches:4 ~switches_per_task:4 in
  let spec = Task_spec.make ~kind:Task_spec.Heavy_hitter ~filter ~leaf_length:24 ~threshold:8.0 () in
  let p = Prefix.nth_descendant Prefix.root ~length:16 5 in
  [
    Journal.Admit
      {
        epoch = 3;
        task_id = 1;
        spec;
        topology;
        duration = 40;
        drop_priority = 2;
        accuracy_history = 0.4;
        global_only = false;
        source = "line one\nline two [with] brackets";
      };
    Journal.Reject { epoch = 4; task_id = 2; kind = Task_spec.Change_detection };
    Journal.Alloc { epoch = 4; task_id = 1; switch = 0; alloc = 64 };
    Journal.Install { epoch = 4; task_id = 1; switch = 0; prefix = p };
    Journal.Delete { epoch = 6; task_id = 1; switch = 0; prefix = p };
    Journal.Switch_down { epoch = 7; switch = 3 };
    Journal.Switch_up { epoch = 9; switch = 3 };
    Journal.Task_end
      {
        epoch = 12;
        task_id = 1;
        kind = Task_spec.Heavy_hitter;
        cause = Journal.Dropped;
        arrived_at = 3;
        active_epochs = 9;
        satisfaction = 0.5;
        mean_accuracy = 0.75;
      };
    Journal.Purge { epoch = 12; task_id = 1 };
  ]

let encode_all entries = String.concat "" (List.map Journal.entry_to_string entries)

let test_journal_roundtrip () =
  let entries = sample_entries () in
  let s = encode_all entries in
  match Journal.entries_of_string s with
  | Error msg -> Alcotest.failf "journal did not parse: %s" msg
  | Ok decoded ->
    Alcotest.(check int) "entry count" (List.length entries) (List.length decoded);
    (* Compare canonically re-encoded forms: structural equality of
       topologies is not meaningful across parse. *)
    Alcotest.(check string) "canonical round trip" s (encode_all decoded);
    Alcotest.(check (list int)) "epochs preserved"
      (List.map Journal.epoch_of entries)
      (List.map Journal.epoch_of decoded)

let test_journal_torn_tail () =
  let entries = sample_entries () in
  let s = encode_all entries in
  let last = Journal.entry_to_string (List.nth entries (List.length entries - 1)) in
  (* Cut into the final entry: classic crash-while-appending artifact. *)
  let torn = String.sub s 0 (String.length s - (String.length last / 2) - 1) in
  match Journal.entries_of_string torn with
  | Error msg -> Alcotest.failf "torn tail must be tolerated: %s" msg
  | Ok decoded ->
    Alcotest.(check int) "torn final entry dropped"
      (List.length entries - 1)
      (List.length decoded)

let test_journal_torn_tail_every_offset () =
  (* Exhaustive crash-point fuzz: a crash can truncate the append at any
     byte, so every cut across the last two entries must parse cleanly to
     exactly the wholly-contained prefix of the journal. *)
  let entries = sample_entries () in
  let s = encode_all entries in
  let total = String.length s in
  let sizes = List.map (fun e -> String.length (Journal.entry_to_string e)) entries in
  (* Offset just past each complete entry, ascending. *)
  let boundaries =
    List.rev (fst (List.fold_left (fun (acc, off) n -> ((off + n) :: acc, off + n)) ([], 0) sizes))
  in
  let complete_before cut = List.length (List.filter (fun b -> b <= cut) boundaries) in
  let last_two =
    match List.rev sizes with
    | a :: b :: _ -> a + b
    | _ -> Alcotest.fail "need at least two sample entries"
  in
  for cut = total - last_two to total do
    match Journal.entries_of_string (String.sub s 0 cut) with
    | Error msg -> Alcotest.failf "cut at byte %d/%d must be tolerated: %s" cut total msg
    | Ok decoded ->
      Alcotest.(check int)
        (Printf.sprintf "entries recovered at cut %d/%d" cut total)
        (complete_before cut) (List.length decoded)
  done

let test_journal_corruption_rejected () =
  let entries = sample_entries () in
  let s =
    match entries with
    | e1 :: rest -> Journal.entry_to_string e1 ^ "garbage line\n" ^ encode_all rest
    | [] -> assert false
  in
  match Journal.entries_of_string s with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mid-journal corruption must be rejected"

let test_journal_file_sink () =
  let path = Filename.temp_file "dream" ".wal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let sink = Journal.file path in
      let entries = sample_entries () in
      List.iter (Journal.append sink) entries;
      Alcotest.(check int) "length" (List.length entries) (Journal.length sink);
      (* The on-disk bytes parse back to the same journal. *)
      let ic = open_in_bin path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (match Journal.entries_of_string contents with
      | Error msg -> Alcotest.failf "file journal did not parse: %s" msg
      | Ok decoded ->
        Alcotest.(check string) "file matches memory" (encode_all entries) (encode_all decoded));
      Journal.truncate sink;
      Alcotest.(check int) "truncated" 0 (Journal.length sink);
      Journal.close sink)

(* ---- helpers: a small controller workload ---- *)

let mk_controller ?(config = Config.default) ?(capacity = 128) ?(num_switches = 4)
    ?(strategy = Allocator.Dream Dream_allocator.default_config) () =
  Controller.create ~config ~strategy ~num_switches ~capacity

let submit_task controller rng ~filter_index ~duration =
  let filter = Prefix.nth_descendant Prefix.root ~length:12 (filter_index * 53) in
  let num_switches = Controller.num_switches controller in
  let topology =
    Topology.create rng ~filter ~num_switches ~switches_per_task:(min 4 num_switches)
  in
  let spec =
    Task_spec.make ~kind:Task_spec.Heavy_hitter ~filter ~leaf_length:24 ~threshold:8.0 ()
  in
  let generator =
    Generator.create (Rng.split rng) ~topology ~profile:(Profile.default ~threshold:8.0)
  in
  Controller.submit controller ~spec ~topology
    ~source:(Dream_traffic.Source.of_generator generator)
    ~duration

let populated_controller ?config ?num_switches () =
  let controller = mk_controller ?config ?num_switches () in
  let rng = Rng.create 21 in
  for i = 0 to 7 do
    ignore (submit_task controller rng ~filter_index:i ~duration:40)
  done;
  controller

(* ---- snapshot / restore ---- *)

let finish controller =
  Controller.finalize controller;
  (Controller.records controller, Controller.summary controller)

let test_snapshot_restore_bit_identical_generic config =
  (* The round-trip property: continuing from a restored snapshot must be
     bit-identical to never having stopped. *)
  let original = populated_controller ~config () in
  Controller.run original ~epochs:25;
  let doc = Controller.snapshot original in
  let restored =
    match Controller.restore doc with
    | Ok c -> c
    | Error msg -> Alcotest.failf "restore failed: %s" msg
  in
  Alcotest.(check int) "same epoch" (Controller.epoch original) (Controller.epoch restored);
  Controller.run original ~epochs:25;
  Controller.run restored ~epochs:25;
  (* Strongest equality first: the full serialized states coincide. *)
  Alcotest.(check bool) "final snapshots byte-identical" true
    (Controller.snapshot original = Controller.snapshot restored);
  let records_a, summary_a = finish original in
  let records_b, summary_b = finish restored in
  Alcotest.(check bool) "same records" true (records_a = records_b);
  Alcotest.(check bool) "same summary" true (summary_a = summary_b);
  Alcotest.(check int) "same rule churn"
    (Controller.total_rules_installed original)
    (Controller.total_rules_installed restored)

let test_snapshot_restore_bit_identical () =
  test_snapshot_restore_bit_identical_generic Config.default

let test_snapshot_restore_with_faults () =
  let spec =
    {
      Fault_model.zero with
      Fault_model.seed = 5;
      crash_rate = 0.1;
      mean_downtime = 3.0;
      fetch_timeout_rate = 0.2;
      counter_loss_rate = 0.05;
      install_failure_rate = 0.05;
      perturb_stddev = 0.02;
    }
  in
  (* The fault model's RNG streams are part of the checkpoint: the restored
     run must replay the exact same fault schedule suffix. *)
  test_snapshot_restore_bit_identical_generic
    { Config.default with Config.faults = Some spec }

let test_restore_rejects_corruption () =
  let controller = populated_controller () in
  Controller.run controller ~epochs:10;
  let doc = Controller.snapshot controller in
  let reject name doc =
    match Controller.restore doc with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s must be rejected" name
  in
  reject "empty document" "";
  reject "wrong magic" ("bogus" ^ doc);
  reject "truncation" (String.sub doc 0 (String.length doc / 2));
  let flipped = Bytes.of_string doc in
  let mid = Bytes.length flipped / 2 in
  Bytes.set flipped mid (if Bytes.get flipped mid = 'a' then 'b' else 'a');
  reject "flipped byte" (Bytes.to_string flipped)

(* ---- fail-over recovery ---- *)

let test_recover_from_fresh_checkpoint_is_clean () =
  (* Crash right after a checkpoint: the journal suffix is empty and the
     network exactly matches the restored state, so the audit must find
     nothing to fix. *)
  let controller = populated_controller () in
  let sink = Journal.memory () in
  Controller.set_journal controller (Some sink);
  Controller.run controller ~epochs:20;
  let snapshot = Controller.checkpoint controller in
  let at_epoch = Controller.epoch controller in
  let active_before = Controller.active_task_ids controller in
  let records_before = Controller.records controller in
  let env = Controller.environment controller in
  match Controller.recover ~env ~snapshot ~journal:(Journal.entries sink) ~at_epoch with
  | Error msg -> Alcotest.failf "recover failed: %s" msg
  | Ok successor ->
    Alcotest.(check int) "resumes at the crash epoch" at_epoch (Controller.epoch successor);
    Alcotest.(check (list int)) "same active tasks" active_before
      (Controller.active_task_ids successor);
    Alcotest.(check bool) "records restored" true
      (Controller.records successor = records_before);
    let rob = Controller.robustness successor in
    Alcotest.(check int) "fail-over counted" 1 rob.Metrics.controller_crashes;
    Alcotest.(check int) "no strays" 0 rob.Metrics.reconcile_removed;
    Alcotest.(check int) "no missing rules" 0 rob.Metrics.reconcile_installed

let test_recover_replays_journal () =
  (* Crash with a non-empty journal suffix: admissions, endings and
     allocation changes after the checkpoint are replayed verbatim, and the
     audit reconciles the drift between the live network and the replayed
     state (measurement state since the checkpoint is legitimately lost). *)
  let controller = populated_controller () in
  let sink = Journal.memory () in
  Controller.set_journal controller (Some sink);
  Controller.run controller ~epochs:20;
  let snapshot = Controller.checkpoint controller in
  let rng = Rng.create 77 in
  ignore (submit_task controller rng ~filter_index:11 ~duration:30);
  ignore (submit_task controller rng ~filter_index:12 ~duration:30);
  Controller.run controller ~epochs:6;
  Alcotest.(check bool) "journal suffix is non-empty" true (Journal.length sink > 0);
  let at_epoch = Controller.epoch controller in
  let active_before = Controller.active_task_ids controller in
  let records_before = Controller.records controller in
  let env = Controller.environment controller in
  match Controller.recover ~env ~snapshot ~journal:(Journal.entries sink) ~at_epoch with
  | Error msg -> Alcotest.failf "recover failed: %s" msg
  | Ok successor ->
    Alcotest.(check int) "resumes at the crash epoch" at_epoch (Controller.epoch successor);
    Alcotest.(check (list int)) "post-checkpoint admissions replayed" active_before
      (Controller.active_task_ids successor);
    Alcotest.(check bool) "records replayed" true
      (Controller.records successor = records_before);
    Alcotest.(check int) "fail-over counted" 1
      (Controller.robustness successor).Metrics.controller_crashes;
    (* And the successor keeps running to completion. *)
    Controller.run successor ~epochs:30;
    Controller.finalize successor;
    let s = Controller.summary successor in
    Alcotest.(check bool) "tasks completed after fail-over" true (s.Metrics.completed > 0)

let test_recover_reconciles_tampered_switches () =
  let controller = populated_controller () in
  let sink = Journal.memory () in
  Controller.set_journal controller (Some sink);
  Controller.run controller ~epochs:20;
  let snapshot = Controller.checkpoint controller in
  let at_epoch = Controller.epoch controller in
  (* Simulate rule drift while the controller is dead: a stray rule from
     nowhere, and one legitimate rule lost. *)
  let switches = Controller.switches controller in
  let tcam = Switch.tcam switches.(0) in
  let stray = Prefix.nth_descendant Prefix.root ~length:30 12345 in
  (match Tcam.install tcam ~owner:9999 stray with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "stray install must fit");
  let lost_owner, lost_prefix =
    match
      List.find_opt (fun (owner, prefixes) -> owner <> 9999 && prefixes <> []) (Tcam.dump tcam)
    with
    | Some (owner, p :: _) -> (owner, p)
    | _ -> Alcotest.fail "expected at least one legitimate rule on switch 0"
  in
  Alcotest.(check bool) "legit rule removed" true (Tcam.remove tcam ~owner:lost_owner lost_prefix);
  let env = Controller.environment controller in
  match Controller.recover ~env ~snapshot ~journal:(Journal.entries sink) ~at_epoch with
  | Error msg -> Alcotest.failf "recover failed: %s" msg
  | Ok successor ->
    let rob = Controller.robustness successor in
    Alcotest.(check int) "stray removed" 1 rob.Metrics.reconcile_removed;
    Alcotest.(check int) "missing rule reinstalled" 1 rob.Metrics.reconcile_installed;
    Alcotest.(check int) "stray owner gone" 0 (Tcam.used_by tcam ~owner:9999);
    Alcotest.(check int) "legit rule back" 1
      (List.length
         (List.filter (( = ) lost_prefix)
            (List.concat_map
               (fun (owner, ps) -> if owner = lost_owner then ps else [])
               (Tcam.dump tcam))))

let test_crash_recovery_sweep_clean () =
  (* End-to-end: under injected controller crashes the driver fails over
     from checkpoint + journal; the invariant checker must stay silent. *)
  let scenario =
    {
      Scenario.default with
      Scenario.num_tasks = 12;
      num_switches = 4;
      switches_per_task = 4;
      capacity = 256;
      arrival_window = 40;
      mean_duration = 30;
      total_epochs = 90;
    }
  in
  let result =
    Crash_recovery.run_once ~checkpoint_interval:15 ~fault_seed:211 ~crash_rate:0.08 scenario
      (Allocator.Dream Dream_allocator.default_config)
  in
  Alcotest.(check bool)
    (Printf.sprintf "crashes injected (%d)" result.Crash_recovery.crashes)
    true
    (result.Crash_recovery.crashes > 0);
  let rob = result.Crash_recovery.summary.Metrics.robustness in
  Alcotest.(check int) "fail-overs survived" result.Crash_recovery.crashes
    rob.Metrics.controller_crashes;
  Alcotest.(check int) "zero invariant violations" 0 rob.Metrics.invariant_violations;
  Alcotest.(check bool) "tasks completed" true
    (result.Crash_recovery.summary.Metrics.completed > 0)

(* ---- invariant checker ---- *)

let test_invariant_clean_run () =
  let config = { Config.default with Config.check_invariants = true } in
  let controller = populated_controller ~config () in
  Controller.run controller ~epochs:40;
  Controller.finalize controller;
  Alcotest.(check int) "no violations on a healthy run" 0
    (Controller.robustness controller).Metrics.invariant_violations

let test_invariant_detects_orphan_rule () =
  let sw = Switch.create ~id:0 ~capacity:8 in
  let p = Prefix.nth_descendant Prefix.root ~length:8 1 in
  (match Tcam.install (Switch.tcam sw) ~owner:42 p with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "install must fit");
  let allocator = Allocator.create Allocator.Equal ~capacities:[ (0, 8) ] in
  let violations =
    Invariant.check_all ~allocator ~switches:[| sw |] ~up:(fun _ -> true) ~tasks:[]
  in
  Alcotest.(check bool) "orphan rule flagged" true
    (List.exists (fun v -> v.Invariant.code = "orphan-rules") violations)

let () =
  Alcotest.run "dream.recovery"
    [
      ( "journal",
        [
          Alcotest.test_case "encode/decode round trip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail tolerated" `Quick test_journal_torn_tail;
          Alcotest.test_case "torn tail tolerated at every offset" `Quick
            test_journal_torn_tail_every_offset;
          Alcotest.test_case "corruption rejected" `Quick test_journal_corruption_rejected;
          Alcotest.test_case "file sink" `Quick test_journal_file_sink;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "restore is bit-identical" `Quick test_snapshot_restore_bit_identical;
          Alcotest.test_case "restore is bit-identical under faults" `Quick
            test_snapshot_restore_with_faults;
          Alcotest.test_case "corruption rejected" `Quick test_restore_rejects_corruption;
        ] );
      ( "failover",
        [
          Alcotest.test_case "fresh checkpoint fail-over is clean" `Quick
            test_recover_from_fresh_checkpoint_is_clean;
          Alcotest.test_case "journal replay" `Quick test_recover_replays_journal;
          Alcotest.test_case "switch reconciliation" `Quick
            test_recover_reconciles_tampered_switches;
          Alcotest.test_case "crash-recovery sweep stays invariant-clean" `Quick
            test_crash_recovery_sweep_clean;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "clean run has no violations" `Quick test_invariant_clean_run;
          Alcotest.test_case "orphan rule detected" `Quick test_invariant_detects_orphan_rule;
        ] );
    ]
