(* Tests for the task-dependent algorithms of Table 1 — HH / HHH / CD
   reports and accuracy estimators — and for ground truth, all on the
   hand-checked 4-bit worked example in Fixtures. *)

module Prefix = Dream_prefix.Prefix
module Switch_id = Dream_traffic.Switch_id
module Task_spec = Dream_tasks.Task_spec
module Task = Dream_tasks.Task
module Report = Dream_tasks.Report
module Accuracy = Dream_tasks.Accuracy
module Hhh = Dream_tasks.Hhh
module Ground_truth = Dream_tasks.Ground_truth
module Recall_estimator = Dream_tasks.Recall_estimator
module F = Fixtures

let prefix_set = Alcotest.testable (Fmt.Dump.list Prefix.pp) (List.equal Prefix.equal)

let reported_prefixes report =
  List.sort Prefix.compare (List.map (fun (i : Report.item) -> i.Report.prefix) report.Report.items)

(* ---- missed-HH bound (Section 5.3) ---- *)

let test_missed_bound () =
  (* A /28 prefix (4 wildcards to /32) with volume 35 and threshold 10 can
     hide at most min(16, floor(35/10)) = 3 heavy hitters. *)
  Alcotest.(check int) "volume bound" 3
    (Recall_estimator.missed_bound ~wildcards:4 ~magnitude:35.0 ~threshold:10.0);
  (* With 1 wildcard bit the leaf bound (2) wins over floor(35/10). *)
  Alcotest.(check int) "leaf bound" 2
    (Recall_estimator.missed_bound ~wildcards:1 ~magnitude:35.0 ~threshold:10.0);
  Alcotest.(check int) "below threshold: none" 0
    (Recall_estimator.missed_bound ~wildcards:4 ~magnitude:9.9 ~threshold:10.0)

(* ---- HH ---- *)

let test_hh_report_converges () =
  let _, last = F.converged_task ~per_switch:16 ~epochs:6 () in
  match last with
  | Some (report, estimate) ->
    Alcotest.check prefix_set "exactly the true HHs"
      (List.sort Prefix.compare (List.map F.leaf F.true_hh_leaves))
      (reported_prefixes report);
    Alcotest.(check bool) "estimated recall is 1 when fully resolved" true
      (estimate.Accuracy.global > 0.99)
  | None -> Alcotest.fail "no epochs ran"

let test_hh_report_magnitudes () =
  let _, last = F.converged_task ~per_switch:16 ~epochs:6 () in
  match last with
  | Some (report, _) ->
    List.iter
      (fun (i : Report.item) ->
        let expected = if Prefix.equal i.Report.prefix (F.leaf 0b0000) then 12.0 else 11.0 in
        Alcotest.(check (float 1e-6)) "volume" expected i.Report.magnitude)
      report.Report.items
  | None -> Alcotest.fail "no epochs ran"

let test_hh_estimate_conservative_at_root () =
  (* With one counter (the whole filter, volume 46 > theta), the estimator
     must see 0 detected and some missed, hence low recall. *)
  let task = Task.create ~id:0 ~spec:(F.spec ()) ~topology:(F.topology ()) () in
  let allocations = F.allocations_of (Task.switches task) 1 in
  let data = F.epoch_data ~epoch:0 () in
  let _, estimate = F.drive_task task ~data ~allocations ~epoch:0 in
  Alcotest.(check bool) "recall below 0.5" true (estimate.Accuracy.global < 0.5)

let test_hh_estimate_within_bounds () =
  for per_switch = 1 to 8 do
    let task = Task.create ~id:0 ~spec:(F.spec ()) ~topology:(F.topology ()) () in
    let allocations = F.allocations_of (Task.switches task) per_switch in
    for epoch = 0 to 3 do
      let data = F.epoch_data ~epoch () in
      let _, estimate = F.drive_task task ~data ~allocations ~epoch in
      Alcotest.(check bool) "global in [0,1]" true
        (estimate.Accuracy.global >= 0.0 && estimate.Accuracy.global <= 1.0);
      Switch_id.Map.iter
        (fun _ v -> Alcotest.(check bool) "local in [0,1]" true (v >= 0.0 && v <= 1.0))
        estimate.Accuracy.locals
    done
  done

let test_hh_no_false_positives () =
  (* TCAM counters are exact: every reported HH must be a true one
     (precision 1, the reason the paper estimates recall). *)
  let task = Task.create ~id:0 ~spec:(F.spec ()) ~topology:(F.topology ()) () in
  let allocations = F.allocations_of (Task.switches task) 5 in
  for epoch = 0 to 5 do
    let data = F.epoch_data ~epoch () in
    let report, _ = F.drive_task task ~data ~allocations ~epoch in
    List.iter
      (fun (i : Report.item) ->
        Alcotest.(check bool) "reported HH is true" true
          (List.exists (fun b -> Prefix.equal (F.leaf b) i.Report.prefix) F.true_hh_leaves))
      report.Report.items
  done

(* ---- HHH ---- *)

let test_hhh_detects_true_set () =
  let _, last =
    F.converged_task ~kind:Task_spec.Hierarchical_heavy_hitter ~per_switch:16 ~epochs:6 ()
  in
  match last with
  | Some (report, estimate) ->
    Alcotest.check prefix_set "true HHH set"
      (List.sort Prefix.compare (F.true_hhh_prefixes ()))
      (reported_prefixes report);
    Alcotest.(check bool) "estimated precision high" true (estimate.Accuracy.global >= 0.9)
  | None -> Alcotest.fail "no epochs ran"

let test_hhh_residual_magnitudes () =
  let _, last =
    F.converged_task ~kind:Task_spec.Hierarchical_heavy_hitter ~per_switch:16 ~epochs:6 ()
  in
  match last with
  | Some (report, _) ->
    List.iter
      (fun (i : Report.item) ->
        let expected =
          if Prefix.equal i.Report.prefix (F.leaf 0b0000) then 12.0
          else if Prefix.equal i.Report.prefix (F.sub 0b010 31) then 13.0
          else 11.0
        in
        Alcotest.(check (float 1e-6)) "residual volume" expected i.Report.magnitude)
      report.Report.items
  | None -> Alcotest.fail "no epochs ran"

(* For the precision-value case analysis, feed counters by hand so the
   monitor still holds exactly one coarse counter when detect runs
   (drive_task would reconfigure it). *)
let root_only_detection ~threshold =
  let spec = F.spec ~kind:Task_spec.Hierarchical_heavy_hitter ~threshold () in
  let task = Task.create ~id:0 ~spec ~topology:(F.topology ()) () in
  let data = F.epoch_data ~epoch:0 () in
  let readings =
    Switch_id.Set.fold
      (fun sw acc ->
        let agg = Dream_traffic.Epoch_data.switch_view data sw in
        ( sw,
          List.map
            (fun q -> (q, Dream_traffic.Aggregate.volume agg q))
            (Task.desired_rules task sw) )
        :: acc)
      (Task.switches task) []
  in
  Task.ingest_counters task readings;
  Hhh.detect (Task.monitor task)

let test_hhh_precision_values_cases () =
  (* The filter counter holds volume 46 > 2*theta with unknown descendants:
     some descendant must itself be a HHH, so the value is 0. *)
  match root_only_detection ~threshold:10.0 with
  | [ d ] -> Alcotest.(check (float 1e-9)) "volume > 2*theta cannot be a true HHH" 0.0 d.Hhh.value
  | _ -> Alcotest.fail "expected exactly one detection at the root"

let test_hhh_ambiguous_half_value () =
  (* theta < 46 <= 2*theta with unknown descendants: ambiguous, value 0.5. *)
  match root_only_detection ~threshold:30.0 with
  | [ d ] -> Alcotest.(check (float 1e-9)) "ambiguous value" 0.5 d.Hhh.value
  | _ -> Alcotest.fail "expected one detection"

let test_hhh_estimate_bounds () =
  for per_switch = 1 to 8 do
    let spec = F.spec ~kind:Task_spec.Hierarchical_heavy_hitter () in
    let task = Task.create ~id:0 ~spec ~topology:(F.topology ()) () in
    let allocations = F.allocations_of (Task.switches task) per_switch in
    for epoch = 0 to 3 do
      let data = F.epoch_data ~epoch () in
      let _, estimate = F.drive_task task ~data ~allocations ~epoch in
      Alcotest.(check bool) "precision in [0,1]" true
        (estimate.Accuracy.global >= 0.0 && estimate.Accuracy.global <= 1.0)
    done
  done

let test_hhh_recall_estimate () =
  (* Fully resolved: recall 1 (no coarse detections hiding finer HHHs). *)
  let task, _ =
    F.converged_task ~kind:Task_spec.Hierarchical_heavy_hitter ~per_switch:16 ~epochs:6 ()
  in
  Alcotest.(check (float 1e-9)) "fully resolved recall" 1.0
    (Hhh.estimate_recall (Task.monitor task));
  (* A single coarse counter with volume 46 (threshold 10) may hide
     floor(46/10) - 1 = 3 more HHHs: recall 1/4.  Feed counters without
     configuring so the monitor still holds only the root. *)
  let spec = F.spec ~kind:Task_spec.Hierarchical_heavy_hitter () in
  let coarse = Task.create ~id:1 ~spec ~topology:(F.topology ()) () in
  let data = F.epoch_data ~epoch:0 () in
  let readings =
    Switch_id.Set.fold
      (fun sw acc ->
        let agg = Dream_traffic.Epoch_data.switch_view data sw in
        ( sw,
          List.map
            (fun q -> (q, Dream_traffic.Aggregate.volume agg q))
            (Task.desired_rules coarse sw) )
        :: acc)
      (Task.switches coarse) []
  in
  Task.ingest_counters coarse readings;
  Alcotest.(check (float 1e-9)) "coarse recall 1/4" 0.25
    (Hhh.estimate_recall (Task.monitor coarse))

let test_hhh_recall_tracks_precision () =
  (* The paper: "recall is correlated with precision" — as resources grow,
     both estimates rise together. *)
  let estimates per_switch =
    let task, last =
      F.converged_task ~kind:Task_spec.Hierarchical_heavy_hitter ~per_switch ~epochs:5 ()
    in
    let precision =
      match last with Some (_, e) -> e.Accuracy.global | None -> 0.0
    in
    (precision, Hhh.estimate_recall (Task.monitor task))
  in
  let p_small, r_small = estimates 1 in
  let p_large, r_large = estimates 16 in
  Alcotest.(check bool) "precision grows" true (p_large >= p_small);
  Alcotest.(check bool) "recall grows" true (r_large >= r_small)

(* ---- CD ---- *)

(* CD warm-up traffic: the example volumes with a deterministic wobble, so
   per-prefix deviations stay non-zero and the drill builds leaf-level
   history (flat traffic would leave the monitor at the root). *)
let wobbled ~epoch =
  let w = if epoch mod 2 = 0 then 1.15 else 0.85 in
  List.map (fun (b, v) -> (b, v *. w)) F.example_volumes

let warm_cd_task ~allocs ~epochs =
  let spec = F.spec ~kind:Task_spec.Change_detection () in
  let task = Task.create ~id:0 ~spec ~topology:(F.topology ()) () in
  let allocations = F.allocations_of (Task.switches task) allocs in
  for epoch = 0 to epochs - 1 do
    let data = F.epoch_data ~volumes:(wobbled ~epoch) ~epoch () in
    ignore (F.drive_task task ~data ~allocations ~epoch)
  done;
  (task, allocations)

let detect_change task allocations ~volumes ~from_epoch =
  (* The change persists; the drill may need an epoch or two to reach the
     changed leaf, so scan a short window. *)
  let found = ref false in
  for epoch = from_epoch to from_epoch + 3 do
    let data = F.epoch_data ~volumes ~epoch () in
    let report, _ = F.drive_task task ~data ~allocations ~epoch in
    if
      List.exists
        (fun (i : Report.item) -> Prefix.equal i.Report.prefix (F.leaf 0b0001))
        report.Report.items
    then found := true
  done;
  !found

let test_cd_detects_step_change () =
  let task, allocations = warm_cd_task ~allocs:16 ~epochs:10 in
  let changed =
    List.map (fun (b, v) -> if b = 0b0001 then (b, 30.0) else (b, v)) F.example_volumes
  in
  Alcotest.(check bool) "0001 reported as change" true
    (detect_change task allocations ~volumes:changed ~from_epoch:10)

let test_cd_quiet_on_steady_traffic () =
  let spec = F.spec ~kind:Task_spec.Change_detection () in
  let task = Task.create ~id:0 ~spec ~topology:(F.topology ()) () in
  let allocations = F.allocations_of (Task.switches task) 16 in
  for epoch = 0 to 9 do
    let data = F.epoch_data ~epoch () in
    let report, _ = F.drive_task task ~data ~allocations ~epoch in
    if epoch > 2 then
      Alcotest.(check int) (Printf.sprintf "no changes at epoch %d" epoch) 0 (Report.size report)
  done

let test_cd_detects_disappearance () =
  let task, allocations = warm_cd_task ~allocs:16 ~epochs:10 in
  (* 0000 (volume 12, mean ~12 after warm-up) vanishes; the warmed leaf
     mean makes the |0 - mean| deviation exceed the threshold. *)
  let gone = List.filter (fun (b, _) -> b <> 0b0000) F.example_volumes in
  let found = ref false in
  for epoch = 10 to 12 do
    let data = F.epoch_data ~volumes:gone ~epoch () in
    let report, _ = F.drive_task task ~data ~allocations ~epoch in
    if
      List.exists
        (fun (i : Report.item) -> Prefix.equal i.Report.prefix (F.leaf 0b0000))
        report.Report.items
    then found := true
  done;
  Alcotest.(check bool) "0000 disappearance reported" true !found

(* ---- Ground truth ---- *)

let test_ground_truth_hh () =
  let data = F.epoch_data ~epoch:0 () in
  let truth =
    Ground_truth.true_heavy_hitters (F.spec ()) data.Dream_traffic.Epoch_data.combined
  in
  Alcotest.check prefix_set "true HHs"
    (List.sort Prefix.compare (List.map F.leaf F.true_hh_leaves))
    (List.sort Prefix.compare (Prefix.Set.elements truth))

let test_ground_truth_hhh () =
  let data = F.epoch_data ~epoch:0 () in
  let truth =
    Ground_truth.true_hierarchical_heavy_hitters
      (F.spec ~kind:Task_spec.Hierarchical_heavy_hitter ())
      data.Dream_traffic.Epoch_data.combined
  in
  Alcotest.check prefix_set "true HHHs"
    (List.sort Prefix.compare (F.true_hhh_prefixes ()))
    (List.sort Prefix.compare (Prefix.Set.elements truth))

let test_ground_truth_hh_recall_scoring () =
  let spec = F.spec () in
  let gt = Ground_truth.create spec in
  let data = F.epoch_data ~epoch:0 () in
  (* A report with one of the two true HHs scores recall 0.5. *)
  let report =
    {
      Report.kind = Task_spec.Heavy_hitter;
      epoch = 0;
      items = [ { Report.prefix = F.leaf 0b0000; magnitude = 12.0 } ];
    }
  in
  let truth = Ground_truth.evaluate gt data report in
  Alcotest.(check (float 1e-9)) "recall 1/2" 0.5 truth.Ground_truth.real_accuracy

let test_ground_truth_hhh_precision_scoring () =
  let spec = F.spec ~kind:Task_spec.Hierarchical_heavy_hitter () in
  let gt = Ground_truth.create spec in
  let data = F.epoch_data ~epoch:0 () in
  (* Two reported, one true: precision 0.5. *)
  let report =
    {
      Report.kind = Task_spec.Hierarchical_heavy_hitter;
      epoch = 0;
      items =
        [
          { Report.prefix = F.leaf 0b0000; magnitude = 12.0 };
          { Report.prefix = F.sub 0b00 30; magnitude = 14.0 };
        ];
    }
  in
  let truth = Ground_truth.evaluate gt data report in
  Alcotest.(check (float 1e-9)) "precision 1/2" 0.5 truth.Ground_truth.real_accuracy

let test_ground_truth_vacuous_accuracy () =
  let spec = F.spec ~threshold:1000.0 () in
  let gt = Ground_truth.create spec in
  let data = F.epoch_data ~epoch:0 () in
  let report = { Report.kind = Task_spec.Heavy_hitter; epoch = 0; items = [] } in
  let truth = Ground_truth.evaluate gt data report in
  Alcotest.(check (float 1e-9)) "no true items: recall 1" 1.0 truth.Ground_truth.real_accuracy

let test_ground_truth_cd_changes () =
  let spec = F.spec ~kind:Task_spec.Change_detection () in
  let gt = Ground_truth.create spec in
  let steady = F.epoch_data ~epoch:0 () in
  let empty_report = { Report.kind = Task_spec.Change_detection; epoch = 0; items = [] } in
  (* Warm the means. *)
  for _ = 0 to 5 do
    ignore (Ground_truth.evaluate gt steady empty_report)
  done;
  (* 0001 jumps 2 -> 30: ground truth must flag exactly that leaf. *)
  let changed =
    List.map (fun (b, v) -> if b = 0b0001 then (b, 30.0) else (b, v)) F.example_volumes
  in
  let data = F.epoch_data ~volumes:changed ~epoch:6 () in
  let truth = Ground_truth.evaluate gt data empty_report in
  Alcotest.check prefix_set "only 0001 changed" [ F.leaf 0b0001 ]
    (Prefix.Set.elements truth.Ground_truth.true_items)

(* ---- Properties: convergence to ground truth on random steady traffic ---- *)

(* Random volumes for the 16 leaves of the 4-bit universe. *)
let gen_volumes =
  QCheck.Gen.(
    list_size (int_range 2 10)
      (pair (int_bound 15) (map (fun v -> float_of_int v /. 2.0) (int_range 1 50))))

let arb_volumes =
  QCheck.make
    ~print:(fun vs ->
      String.concat ";" (List.map (fun (b, v) -> Printf.sprintf "%d:%.1f" b v) vs))
    gen_volumes

let converged_report kind volumes =
  let spec = F.spec ~kind () in
  let task = Task.create ~id:0 ~spec ~topology:(F.topology ()) () in
  let allocations = F.allocations_of (Task.switches task) 20 in
  let last = ref None in
  for epoch = 0 to 5 do
    let data = F.epoch_data ~volumes ~epoch () in
    let report, _ = F.drive_task task ~data ~allocations ~epoch in
    last := Some (data, report)
  done;
  match !last with Some x -> x | None -> assert false

let prop_hh_converges_to_truth =
  QCheck.Test.make ~name:"HH report = ground truth on steady traffic" ~count:40 arb_volumes
    (fun volumes ->
      (* Deduplicate leaves (combine volumes). *)
      let data, report = converged_report Task_spec.Heavy_hitter volumes in
      let truth =
        Ground_truth.true_heavy_hitters (F.spec ())
          data.Dream_traffic.Epoch_data.combined
      in
      Prefix.Set.equal (Report.prefixes report) truth)

let prop_hhh_converges_to_truth =
  QCheck.Test.make ~name:"HHH report = ground truth on steady traffic" ~count:40 arb_volumes
    (fun volumes ->
      let data, report = converged_report Task_spec.Hierarchical_heavy_hitter volumes in
      let truth =
        Ground_truth.true_hierarchical_heavy_hitters
          (F.spec ~kind:Task_spec.Hierarchical_heavy_hitter ())
          data.Dream_traffic.Epoch_data.combined
      in
      Prefix.Set.equal (Report.prefixes report) truth)

(* ---- End-to-end: estimator consistency with ground truth ---- *)

let test_hh_real_accuracy_reaches_one () =
  let spec = F.spec () in
  let gt = Ground_truth.create spec in
  let task = Task.create ~id:0 ~spec ~topology:(F.topology ()) () in
  let allocations = F.allocations_of (Task.switches task) 16 in
  let final = ref 0.0 in
  for epoch = 0 to 5 do
    let data = F.epoch_data ~epoch () in
    let report, _ = F.drive_task task ~data ~allocations ~epoch in
    final := (Ground_truth.evaluate gt data report).Ground_truth.real_accuracy
  done;
  Alcotest.(check (float 1e-9)) "real recall 1 after convergence" 1.0 !final

let () =
  Alcotest.run "dream.tasks.estimators"
    [
      ("missed-bound", [ Alcotest.test_case "min of two bounds" `Quick test_missed_bound ]);
      ( "hh",
        [
          Alcotest.test_case "report converges to true HHs" `Quick test_hh_report_converges;
          Alcotest.test_case "report magnitudes" `Quick test_hh_report_magnitudes;
          Alcotest.test_case "conservative at root" `Quick test_hh_estimate_conservative_at_root;
          Alcotest.test_case "estimates within bounds" `Quick test_hh_estimate_within_bounds;
          Alcotest.test_case "no false positives" `Quick test_hh_no_false_positives;
        ] );
      ( "hhh",
        [
          Alcotest.test_case "detects true set" `Quick test_hhh_detects_true_set;
          Alcotest.test_case "residual magnitudes" `Quick test_hhh_residual_magnitudes;
          Alcotest.test_case "precision value: >2theta is false" `Quick
            test_hhh_precision_values_cases;
          Alcotest.test_case "precision value: ambiguous is 0.5" `Quick
            test_hhh_ambiguous_half_value;
          Alcotest.test_case "estimates within bounds" `Quick test_hhh_estimate_bounds;
          Alcotest.test_case "recall estimate" `Quick test_hhh_recall_estimate;
          Alcotest.test_case "recall tracks precision" `Quick test_hhh_recall_tracks_precision;
        ] );
      ( "cd",
        [
          Alcotest.test_case "detects step change" `Quick test_cd_detects_step_change;
          Alcotest.test_case "quiet on steady traffic" `Quick test_cd_quiet_on_steady_traffic;
          Alcotest.test_case "detects disappearance" `Quick test_cd_detects_disappearance;
        ] );
      ( "ground-truth",
        [
          Alcotest.test_case "hh set" `Quick test_ground_truth_hh;
          Alcotest.test_case "hhh set" `Quick test_ground_truth_hhh;
          Alcotest.test_case "hh recall scoring" `Quick test_ground_truth_hh_recall_scoring;
          Alcotest.test_case "hhh precision scoring" `Quick test_ground_truth_hhh_precision_scoring;
          Alcotest.test_case "vacuous accuracy is 1" `Quick test_ground_truth_vacuous_accuracy;
          Alcotest.test_case "cd change set" `Quick test_ground_truth_cd_changes;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "real recall reaches 1" `Quick test_hh_real_accuracy_reaches_one;
          QCheck_alcotest.to_alcotest prop_hh_converges_to_truth;
          QCheck_alcotest.to_alcotest prop_hhh_converges_to_truth;
        ] );
    ]
