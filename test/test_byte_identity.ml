(* Backend byte-identity regression: seeded figure runs must produce
   BIT-identical metric lists under the flat store and the boxed reference
   store.  This is the end-to-end companion to test_flat_store's unit
   differentials: it covers the full pipeline — generator, epoch data,
   TCAM reads, estimators, allocator, configuration — for the three
   committed baseline figures that exercise it from three angles (fig2:
   estimator recall, fig4: allocation policy, fig17: the full controller
   loop under the delay model). *)

module Aggregate = Dream_traffic.Aggregate
module Fig02 = Dream_sim.Fig02
module Fig04 = Dream_sim.Fig04
module Fig17 = Dream_sim.Fig17
module Snapshot = Dream_obs.Bench_snapshot

let metric_fingerprint (m : Snapshot.metric) =
  Printf.sprintf "%s|%s|%Lx|%s" m.Snapshot.m_name m.Snapshot.m_unit
    (Int64.bits_of_float m.Snapshot.m_value)
    (Snapshot.direction_to_string m.Snapshot.m_direction)

(* fig17's report/allocate/configure columns are measured wall-clock time
   (only fetch/save come from the deterministic delay model), so backends
   can only be required to produce finite values there, not equal bits. *)
let wall_clock_metric name =
  List.exists
    (fun needle ->
      let nl = String.length needle and l = String.length name in
      let rec scan i = i + nl <= l && (String.sub name i nl = needle || scan (i + 1)) in
      scan 0)
    [ "report_ms"; "allocate_ms"; "configure_ms"; "alloc_p95" ]

let run_both name (run : quick:bool -> Snapshot.metric list) () =
  let under backend = Aggregate.with_backend backend (fun () -> run ~quick:true) in
  let flat = under Aggregate.Flat in
  let reference = under Aggregate.Reference in
  Alcotest.(check int)
    (name ^ ": same metric count")
    (List.length flat) (List.length reference);
  let deterministic = ref 0 in
  List.iter2
    (fun f r ->
      if wall_clock_metric f.Snapshot.m_name then
        Alcotest.(check bool)
          (Printf.sprintf "%s: %s finite under both" name f.Snapshot.m_name)
          true
          (Float.is_finite f.Snapshot.m_value && Float.is_finite r.Snapshot.m_value)
      else begin
        incr deterministic;
        Alcotest.(check string)
          (Printf.sprintf "%s: %s bit-identical" name f.Snapshot.m_name)
          (metric_fingerprint f) (metric_fingerprint r)
      end)
    flat reference;
  (* A byte-equal pair of empty runs would be vacuous. *)
  Alcotest.(check bool) (name ^ ": has deterministic metrics") true (!deterministic > 0)

let () =
  Alcotest.run "dream.byte_identity"
    [
      ( "backends",
        [
          Alcotest.test_case "fig2 flat = reference" `Slow (run_both "fig2" Fig02.run);
          Alcotest.test_case "fig4 flat = reference" `Slow (run_both "fig4" Fig04.run);
          Alcotest.test_case "fig17 flat = reference" `Slow (run_both "fig17" Fig17.run);
        ] );
    ]
