(* Benchmark-trajectory tests: the BENCH_<figure>.json codec, the
   comparator's gating semantics (the CI perf gate's exit-1 contract),
   and bit-for-bit deterministic profiles over manual clock/GC sources. *)

module Snapshot = Dream_obs.Bench_snapshot
module Diff = Dream_obs.Bench_diff
module Profile = Dream_obs.Profile
module Clock = Dream_obs.Clock
module Gc_stats = Dream_obs.Gc_stats
module Registry = Dream_obs.Registry

(* {1 Codec} *)

let gc_reading i =
  {
    Gc_stats.minor_words = float_of_int (i * 1000) /. 16.0;
    promoted_words = float_of_int (i * 10) /. 4.0;
    major_words = float_of_int (i * 30) /. 8.0;
    minor_collections = i;
    major_collections = i / 3;
    compactions = i / 7;
  }

(* Snapshots built from arbitrary ints and strings: metric names are made
   unique by index (validate rejects duplicates), every float is finite by
   construction, and names/units exercise the JSON string escaper. *)
let snapshot_of (figure, quick, cells, phases) =
  let metrics =
    List.mapi
      (fun i (name, v, tol) ->
        let direction =
          match i mod 3 with 0 -> Snapshot.Lower_better | 1 -> Snapshot.Higher_better | _ -> Snapshot.Info
        in
        Snapshot.metric
          ~unit_:(if i mod 2 = 0 then "ms" else "w\"x\\y")
          ~direction
          ~tolerance_pct:(Float.abs (float_of_int tol /. 8.0))
          (Printf.sprintf "m%d_%s" i name)
          (float_of_int v /. 32.0))
      cells
  in
  let phases =
    List.mapi
      (fun i (count, wall) ->
        {
          Profile.path = Printf.sprintf "epoch/p%d" i;
          count = abs count;
          wall_ms = float_of_int wall /. 64.0;
          gc = gc_reading (abs count);
        })
      phases
  in
  Snapshot.make
    ~figure:(if figure = "" then "f" else figure)
    ~quick ~seeds:[ 1; 31; 97 ] ~metrics ~phases ()

let codec_round_trip =
  QCheck.Test.make ~name:"snapshot codec round-trips exactly" ~count:200
    QCheck.(
      quad string bool
        (small_list (triple (string_of_size Gen.small_nat) int small_int))
        (small_list (pair small_int small_int)))
    (fun input ->
      let snap = snapshot_of input in
      match Snapshot.of_string (Snapshot.to_string snap) with
      | Ok snap' -> snap = snap'
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e)

let test_nan_never_round_trips () =
  let snap =
    Snapshot.make ~figure:"bad" ~quick:true
      ~metrics:[ Snapshot.metric "broken" Float.nan ]
      ()
  in
  (match Snapshot.validate snap with
  | Ok () -> Alcotest.fail "validate accepted a NaN metric"
  | Error _ -> ());
  (* Even if the document were forced out, NaN renders as JSON null and
     the reader rejects it — the comparator's 124 path. *)
  match Snapshot.of_string (Snapshot.to_string snap) with
  | Ok _ -> Alcotest.fail "parsed a snapshot containing NaN"
  | Error _ -> ()

let test_filename_sanitizes () =
  Alcotest.(check string) "dash maps to underscore" "BENCH_degraded_mode.json"
    (Snapshot.filename "degraded-mode");
  Alcotest.(check string) "path chars map to underscore" "BENCH____fig_6.json"
    (Snapshot.filename "../fig 6")

(* {1 Comparator} *)

let base_metrics =
  [
    Snapshot.metric ~unit_:"pct" ~direction:Snapshot.Higher_better ~tolerance_pct:0.5
      "satisfaction" 80.0;
    Snapshot.metric ~unit_:"count" ~direction:Snapshot.Lower_better ~tolerance_pct:0.0
      "violations" 0.0;
    Snapshot.metric ~unit_:"ms" "wall" 120.0;
  ]

let snap ?(figure = "fig6") ?(quick = true) metrics =
  Snapshot.make ~figure ~quick ~metrics ()

let diff_exn ?tolerance_pct base current =
  match Diff.diff ?tolerance_pct ~base current with
  | Ok r -> r
  | Error e -> Alcotest.failf "diff failed: %s" e

let row report name =
  match List.find_opt (fun r -> r.Diff.r_name = name) report.Diff.d_rows with
  | Some r -> r
  | None -> Alcotest.failf "no row for %s" name

let status =
  Alcotest.testable
    (fun fmt s ->
      Format.pp_print_string fmt
        (match s with
        | Diff.Unchanged -> "unchanged"
        | Diff.Improved -> "improved"
        | Diff.Regressed -> "regressed"
        | Diff.Missing -> "missing"
        | Diff.Added -> "added"))
    ( = )

let test_diff_identical () =
  let report = diff_exn (snap base_metrics) (snap base_metrics) in
  Alcotest.(check int) "no regressions" 0 report.Diff.d_regressions;
  List.iter
    (fun r -> Alcotest.check status r.Diff.r_name Diff.Unchanged r.Diff.r_status)
    report.Diff.d_rows

let test_diff_gates_on_direction () =
  (* Satisfaction falling beyond its 0.5% tolerance regresses; rising is
     an improvement and never gates. *)
  let worse =
    snap
      [
        Snapshot.metric ~unit_:"pct" ~direction:Snapshot.Higher_better ~tolerance_pct:0.5
          "satisfaction" 78.0;
        Snapshot.metric ~unit_:"count" ~direction:Snapshot.Lower_better ~tolerance_pct:0.0
          "violations" 0.0;
        Snapshot.metric ~unit_:"ms" "wall" 500.0;
      ]
  in
  let report = diff_exn (snap base_metrics) worse in
  Alcotest.(check int) "one regression" 1 report.Diff.d_regressions;
  Alcotest.check status "satisfaction regressed" Diff.Regressed
    (row report "satisfaction").Diff.r_status;
  (* The wall-clock metric is Info: a 4x slowdown stays Unchanged. *)
  Alcotest.check status "info never gates" Diff.Unchanged (row report "wall").Diff.r_status;
  let better =
    snap
      [
        Snapshot.metric ~unit_:"pct" ~direction:Snapshot.Higher_better ~tolerance_pct:0.5
          "satisfaction" 90.0;
        Snapshot.metric ~unit_:"count" ~direction:Snapshot.Lower_better ~tolerance_pct:0.0
          "violations" 0.0;
        Snapshot.metric ~unit_:"ms" "wall" 120.0;
      ]
  in
  let report = diff_exn (snap base_metrics) better in
  Alcotest.(check int) "improvement does not gate" 0 report.Diff.d_regressions;
  Alcotest.check status "satisfaction improved" Diff.Improved
    (row report "satisfaction").Diff.r_status

let test_diff_within_tolerance () =
  let nudged =
    snap
      [
        Snapshot.metric ~unit_:"pct" ~direction:Snapshot.Higher_better ~tolerance_pct:0.5
          "satisfaction" 79.7;
        Snapshot.metric ~unit_:"count" ~direction:Snapshot.Lower_better ~tolerance_pct:0.0
          "violations" 0.0;
        Snapshot.metric ~unit_:"ms" "wall" 120.0;
      ]
  in
  let report = diff_exn (snap base_metrics) nudged in
  Alcotest.(check int) "within tolerance" 0 report.Diff.d_regressions

let test_diff_missing_and_added () =
  let current =
    snap
      [
        Snapshot.metric ~unit_:"pct" ~direction:Snapshot.Higher_better ~tolerance_pct:0.5
          "satisfaction" 80.0;
        Snapshot.metric ~unit_:"ms" "wall" 120.0;
        Snapshot.metric ~unit_:"count" "brand_new" 7.0;
      ]
  in
  let report = diff_exn (snap base_metrics) current in
  (* Lost coverage gates; new coverage is reported but never gates. *)
  Alcotest.check status "lost metric is missing" Diff.Missing
    (row report "violations").Diff.r_status;
  Alcotest.check status "new metric is added" Diff.Added (row report "brand_new").Diff.r_status;
  Alcotest.(check int) "only the loss gates" 1 report.Diff.d_regressions

let test_diff_zero_baseline () =
  (* A zero baseline has no relative scale: any move off it on a gating
     metric is an infinite-percent change and gates even at tolerance 0. *)
  let current =
    snap
      [
        Snapshot.metric ~unit_:"pct" ~direction:Snapshot.Higher_better ~tolerance_pct:0.5
          "satisfaction" 80.0;
        Snapshot.metric ~unit_:"count" ~direction:Snapshot.Lower_better ~tolerance_pct:0.0
          "violations" 2.0;
        Snapshot.metric ~unit_:"ms" "wall" 120.0;
      ]
  in
  let report = diff_exn (snap base_metrics) current in
  let r = row report "violations" in
  Alcotest.check status "off-zero gates" Diff.Regressed r.Diff.r_status;
  Alcotest.(check bool) "delta is infinite" true (r.Diff.r_delta_pct = Float.infinity)

let test_diff_rejects_mismatches () =
  let reject base current =
    match Diff.diff ~base current with
    | Ok _ -> Alcotest.fail "diff accepted mismatched snapshots"
    | Error _ -> ()
  in
  reject (snap base_metrics) (snap ~figure:"fig8" base_metrics);
  reject (snap base_metrics) (snap ~quick:false base_metrics);
  match Diff.diff ~tolerance_pct:(-1.0) ~base:(snap base_metrics) (snap base_metrics) with
  | Ok _ -> Alcotest.fail "diff accepted a negative tolerance"
  | Error _ -> ()

let test_trend () =
  let point v = snap [ Snapshot.metric ~unit_:"pct" "satisfaction" v ] in
  let rows = Diff.trend [ ("a", point 80.0); ("b", point 70.0); ("c", point 90.0) ] in
  match rows with
  | [ r ] ->
    Alcotest.(check string) "figure" "fig6" r.Diff.t_figure;
    Alcotest.(check (float 1e-9)) "min" 70.0 r.Diff.t_min;
    Alcotest.(check (float 1e-9)) "max" 90.0 r.Diff.t_max;
    Alcotest.(check (float 1e-9)) "last vs first" 12.5 r.Diff.t_delta_pct;
    Alcotest.(check int) "points" 3 (List.length r.Diff.t_points)
  | rows -> Alcotest.failf "expected one trend row, got %d" (List.length rows)

(* {1 Deterministic profiles} *)

let test_profile_deterministic () =
  let clock, mc = Clock.manual () in
  let gc, mg = Gc_stats.manual () in
  let p = Profile.create ~clock ~gc () in
  Profile.span p "epoch" (fun () ->
      Clock.advance mc 5.0;
      Gc_stats.advance mg { Gc_stats.zero with Gc_stats.minor_words = 100.0; minor_collections = 1 };
      Profile.span p "allocate" (fun () ->
          Clock.advance mc 2.0;
          Gc_stats.advance mg { Gc_stats.zero with Gc_stats.minor_words = 40.0 }));
  (* The nested span's cost is part of its parent's (flame-graph
     convention), and with manual sources every number is exact. *)
  (match Profile.find p "epoch" with
  | Some s ->
    Alcotest.(check int) "epoch count" 1 s.Profile.count;
    Alcotest.(check (float 0.0)) "epoch wall" 7.0 s.Profile.wall_ms;
    Alcotest.(check (float 0.0)) "epoch minor words" 140.0 s.Profile.gc.Gc_stats.minor_words;
    Alcotest.(check int) "epoch minor collections" 1 s.Profile.gc.Gc_stats.minor_collections
  | None -> Alcotest.fail "no epoch span");
  (match Profile.find p "epoch/allocate" with
  | Some s ->
    Alcotest.(check (float 0.0)) "allocate wall" 2.0 s.Profile.wall_ms;
    Alcotest.(check (float 0.0)) "allocate minor words" 40.0 s.Profile.gc.Gc_stats.minor_words
  | None -> Alcotest.fail "no nested span");
  (* Externally measured fragments merge under an explicit path. *)
  Profile.record p ~path:"epoch/allocate" ~wall_ms:3.0
    ~gc:{ Gc_stats.zero with Gc_stats.minor_words = 10.0 };
  (match Profile.find p "epoch/allocate" with
  | Some s ->
    Alcotest.(check int) "merged count" 2 s.Profile.count;
    Alcotest.(check (float 0.0)) "merged wall" 5.0 s.Profile.wall_ms;
    Alcotest.(check (float 0.0)) "merged minor words" 50.0 s.Profile.gc.Gc_stats.minor_words
  | None -> Alcotest.fail "record lost the span");
  (* The profile.json codec is the identity on stats. *)
  match Profile.stats_of_json (Profile.stats_to_json (Profile.stats p)) with
  | Ok stats -> Alcotest.(check bool) "stats round-trip" true (stats = Profile.stats p)
  | Error e -> Alcotest.failf "stats reparse failed: %s" e

let test_observe_epoch () =
  let reg = Registry.create () in
  let p = Profile.create () in
  let gc =
    {
      Gc_stats.minor_words = 1000.0;
      promoted_words = 200.0;
      major_words = 300.0;
      minor_collections = 3;
      major_collections = 1;
      compactions = 0;
    }
  in
  Profile.observe_epoch p reg ~wall_ms:10.0 ~gc;
  (* Allocated words = minor + major - promoted (promoted words would
     otherwise be double-counted). *)
  Alcotest.(check (float 1e-9)) "alloc rate" 110.0 (Registry.Gauge.value (Registry.gauge reg "alloc_rate_words_per_ms"));
  Alcotest.(check int) "minor collections" 3
    (Registry.Counter.value (Registry.counter reg "gc_minor_collections"));
  Alcotest.(check int) "major collections" 1
    (Registry.Counter.value (Registry.counter reg "gc_major_collections"));
  Alcotest.(check int) "major-gc epochs observed" 1
    (Registry.Histogram.count (Registry.histogram reg "gc_major_epoch_ms"));
  Alcotest.(check int) "alloc histogram fed" 1
    (Registry.Histogram.count (Registry.histogram reg "epoch_alloc_words"))

let () =
  Alcotest.run "bench"
    [
      ( "codec",
        [
          QCheck_alcotest.to_alcotest codec_round_trip;
          Alcotest.test_case "NaN never round-trips" `Quick test_nan_never_round_trips;
          Alcotest.test_case "filename sanitizes" `Quick test_filename_sanitizes;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identical snapshots" `Quick test_diff_identical;
          Alcotest.test_case "direction-aware gating" `Quick test_diff_gates_on_direction;
          Alcotest.test_case "within tolerance" `Quick test_diff_within_tolerance;
          Alcotest.test_case "missing gates, added does not" `Quick test_diff_missing_and_added;
          Alcotest.test_case "zero baseline" `Quick test_diff_zero_baseline;
          Alcotest.test_case "rejects mismatches" `Quick test_diff_rejects_mismatches;
          Alcotest.test_case "trend trajectories" `Quick test_trend;
        ] );
      ( "profile",
        [
          Alcotest.test_case "deterministic over manual sources" `Quick
            test_profile_deterministic;
          Alcotest.test_case "observe_epoch feeds the registry" `Quick test_observe_epoch;
        ] );
    ]
