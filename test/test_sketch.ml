(* Tests for dream.sketch: Count-Min invariants (qcheck), sketch-based HH
   detection on the worked example, the precision estimator, and the
   DREAM-driven sketch pool. *)

module Prefix = Dream_prefix.Prefix
module Flow = Dream_traffic.Flow
module Aggregate = Dream_traffic.Aggregate
module Task_spec = Dream_tasks.Task_spec
module Report = Dream_tasks.Report
module Count_min = Dream_sketch.Count_min
module Sketch_hh = Dream_sketch.Sketch_hh
module Sketch_pool = Dream_sketch.Sketch_pool
module F = Fixtures

(* ---- Count-Min ---- *)

let test_cm_create_invalid () =
  Alcotest.check_raises "width 0" (Invalid_argument "Count_min.create: width must be positive")
    (fun () -> ignore (Count_min.create ~width:0 ~depth:4 ~seed:1));
  Alcotest.check_raises "depth 0" (Invalid_argument "Count_min.create: depth must be positive")
    (fun () -> ignore (Count_min.create ~width:8 ~depth:0 ~seed:1))

let test_cm_basic_counts () =
  let s = Count_min.create ~width:64 ~depth:4 ~seed:7 in
  Count_min.update s ~key:42 10.0;
  Count_min.update s ~key:42 5.0;
  Count_min.update s ~key:99 3.0;
  Alcotest.(check bool) "estimate >= true" true (Count_min.estimate s ~key:42 >= 15.0);
  Alcotest.(check (float 1e-9)) "total" 18.0 (Count_min.total s);
  Alcotest.(check int) "cells" 256 (Count_min.cells s)

let test_cm_unseen_key_small () =
  let s = Count_min.create ~width:1024 ~depth:4 ~seed:7 in
  Count_min.update s ~key:1 100.0;
  (* An unseen key collides with probability ~ depth/width per row; with
     width 1024 its estimate is almost surely 0. *)
  Alcotest.(check (float 1e-9)) "unseen" 0.0 (Count_min.estimate s ~key:2)

let test_cm_reset () =
  let s = Count_min.create ~width:16 ~depth:2 ~seed:7 in
  Count_min.update s ~key:1 5.0;
  Count_min.reset s;
  Alcotest.(check (float 1e-9)) "zeroed" 0.0 (Count_min.estimate s ~key:1);
  Alcotest.(check (float 1e-9)) "total zeroed" 0.0 (Count_min.total s)

let test_cm_merge () =
  let a = Count_min.create ~width:32 ~depth:3 ~seed:5 in
  let b = Count_min.create ~width:32 ~depth:3 ~seed:5 in
  Count_min.update a ~key:7 4.0;
  Count_min.update b ~key:7 6.0;
  let m = Count_min.merge a b in
  Alcotest.(check bool) "merged estimate >= 10" true (Count_min.estimate m ~key:7 >= 10.0);
  Alcotest.(check (float 1e-9)) "merged total" 10.0 (Count_min.total m)

let test_cm_merge_mismatch () =
  let a = Count_min.create ~width:32 ~depth:3 ~seed:5 in
  let b = Count_min.create ~width:16 ~depth:3 ~seed:5 in
  Alcotest.check_raises "dims" (Invalid_argument "Count_min.merge: dimension mismatch") (fun () ->
      ignore (Count_min.merge a b));
  let c = Count_min.create ~width:32 ~depth:3 ~seed:6 in
  Alcotest.check_raises "seed" (Invalid_argument "Count_min.merge: seed mismatch") (fun () ->
      ignore (Count_min.merge a c))

let test_cm_error_bound_definition () =
  let s = Count_min.create ~width:100 ~depth:5 ~seed:1 in
  Count_min.update s ~key:1 50.0;
  Alcotest.(check (float 1e-9)) "epsilon" (Float.exp 1.0 /. 100.0) (Count_min.epsilon s);
  Alcotest.(check (float 1e-9)) "bound = eps * total"
    (Float.exp 1.0 /. 100.0 *. 50.0)
    (Count_min.error_bound s);
  Alcotest.(check (float 1e-9)) "failure prob" (Float.exp (-5.0)) (Count_min.failure_probability s)

let gen_stream =
  QCheck.Gen.(list_size (int_range 1 200) (pair (int_bound 500) (int_range 1 50)))

let prop_cm_never_undercounts =
  QCheck.Test.make ~name:"estimate never under-counts" ~count:100 (QCheck.make gen_stream)
    (fun stream ->
      let s = Count_min.create ~width:64 ~depth:4 ~seed:3 in
      List.iter (fun (key, v) -> Count_min.update s ~key (float_of_int v)) stream;
      let truth = Hashtbl.create 64 in
      List.iter
        (fun (key, v) ->
          Hashtbl.replace truth key
            ((match Hashtbl.find_opt truth key with Some x -> x | None -> 0.0)
            +. float_of_int v))
        stream;
      Hashtbl.fold
        (fun key true_v ok -> ok && Count_min.estimate s ~key >= true_v -. 1e-6)
        truth true)

let prop_cm_merge_equals_concat =
  QCheck.Test.make ~name:"merge estimates = concatenated-stream estimates" ~count:100
    (QCheck.make QCheck.Gen.(pair gen_stream gen_stream))
    (fun (s1, s2) ->
      let a = Count_min.create ~width:32 ~depth:4 ~seed:9 in
      let b = Count_min.create ~width:32 ~depth:4 ~seed:9 in
      let c = Count_min.create ~width:32 ~depth:4 ~seed:9 in
      List.iter (fun (key, v) -> Count_min.update a ~key (float_of_int v)) s1;
      List.iter (fun (key, v) -> Count_min.update b ~key (float_of_int v)) s2;
      List.iter (fun (key, v) -> Count_min.update c ~key (float_of_int v)) (s1 @ s2);
      let m = Count_min.merge a b in
      List.for_all
        (fun (key, _) -> Float.abs (Count_min.estimate m ~key -. Count_min.estimate c ~key) < 1e-6)
        (s1 @ s2))

(* ---- Sketch HH ---- *)

let example_aggregate () =
  (F.epoch_data ~epoch:0 ()).Dream_traffic.Epoch_data.combined

let test_sketch_hh_perfect_recall () =
  (* A generously sized sketch detects exactly the true HHs. *)
  let task = Sketch_hh.create ~spec:(F.spec ()) ~cells:4096 ~seed:1 () in
  Sketch_hh.observe_epoch task (example_aggregate ());
  let report = Sketch_hh.report task ~epoch:0 in
  let expected = List.sort Prefix.compare (List.map F.leaf F.true_hh_leaves) in
  let got =
    List.sort Prefix.compare (List.map (fun (i : Report.item) -> i.Report.prefix) report.Report.items)
  in
  Alcotest.(check bool) "exact detection" true (List.equal Prefix.equal expected got);
  Alcotest.(check (float 1e-9)) "recall 1" 1.0
    (Sketch_hh.real_accuracy task (example_aggregate ()) ~precision:false);
  Alcotest.(check bool) "high estimated precision" true (Sketch_hh.estimate_precision task > 0.9)

let test_sketch_hh_recall_never_below_one () =
  (* Count-Min never under-counts, so every true HH is always reported,
     whatever the sketch size. *)
  List.iter
    (fun cells ->
      let task = Sketch_hh.create ~spec:(F.spec ()) ~cells ~seed:2 () in
      Sketch_hh.observe_epoch task (example_aggregate ());
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "recall 1 at %d cells" cells)
        1.0
        (Sketch_hh.real_accuracy task (example_aggregate ()) ~precision:false))
    [ 8; 16; 64; 1024 ]

let test_sketch_hh_small_sketch_lower_precision () =
  (* Tiny sketches collide: more detections, lower precision, and a lower
     precision estimate. *)
  let small = Sketch_hh.create ~spec:(F.spec ()) ~cells:8 ~seed:3 () in
  let large = Sketch_hh.create ~spec:(F.spec ()) ~cells:4096 ~seed:3 () in
  Sketch_hh.observe_epoch small (example_aggregate ());
  Sketch_hh.observe_epoch large (example_aggregate ());
  Alcotest.(check bool) "small estimates less precise" true
    (Sketch_hh.estimate_precision small <= Sketch_hh.estimate_precision large);
  Alcotest.(check bool) "small really less precise" true
    (Sketch_hh.real_accuracy small (example_aggregate ()) ~precision:true
    <= Sketch_hh.real_accuracy large (example_aggregate ()) ~precision:true)

let test_sketch_hh_resize () =
  let task = Sketch_hh.create ~spec:(F.spec ()) ~cells:64 ~seed:4 () in
  Alcotest.(check int) "initial cells" 64 (Sketch_hh.cells task);
  Sketch_hh.resize task ~cells:256;
  Sketch_hh.observe_epoch task (example_aggregate ());
  Alcotest.(check int) "resized" 256 (Sketch_hh.cells task)

let test_sketch_estimator_is_pessimistic () =
  (* The estimated precision must not exceed the real precision by more
     than the 0.5-band construction allows; in particular a fully-correct
     report never gets an estimate of 0. *)
  let task = Sketch_hh.create ~spec:(F.spec ()) ~cells:512 ~seed:5 () in
  Sketch_hh.observe_epoch task (example_aggregate ());
  let est = Sketch_hh.estimate_precision task in
  Alcotest.(check bool) "estimate in (0, 1]" true (est > 0.0 && est <= 1.0)

(* ---- Sketch pool (DREAM-over-sketches) ---- *)

let test_pool_admission_and_allocation () =
  let pool = Sketch_pool.create ~capacity:2048 () in
  let t0 = Sketch_hh.create ~spec:(F.spec ()) ~cells:4 ~seed:1 () in
  let t1 = Sketch_hh.create ~spec:(F.spec ()) ~cells:4 ~seed:2 () in
  Alcotest.(check bool) "admit 0" true (Sketch_pool.try_admit pool ~id:0 t0);
  Alcotest.(check bool) "admit 1" true (Sketch_pool.try_admit pool ~id:1 t1);
  Alcotest.(check int) "two active" 2 (Sketch_pool.active pool);
  for _ = 1 to 10 do
    Sketch_pool.observe_epoch pool (example_aggregate ())
  done;
  Alcotest.(check bool) "allocations grew" true
    (Sketch_pool.allocation pool ~id:0 > 1 && Sketch_pool.allocation pool ~id:1 > 1);
  Alcotest.(check int) "reports for both" 2 (List.length (Sketch_pool.reports pool ~epoch:10));
  Sketch_pool.release pool ~id:0;
  Alcotest.(check int) "one active" 1 (Sketch_pool.active pool);
  Alcotest.(check int) "released allocation" 0 (Sketch_pool.allocation pool ~id:0)

let test_pool_precision_converges () =
  let pool = Sketch_pool.create ~capacity:4096 () in
  let t0 = Sketch_hh.create ~spec:(F.spec ()) ~cells:4 ~seed:1 () in
  ignore (Sketch_pool.try_admit pool ~id:0 t0);
  for _ = 1 to 15 do
    Sketch_pool.observe_epoch pool (example_aggregate ())
  done;
  match Sketch_pool.smoothed_precision pool ~id:0 with
  | Some p -> Alcotest.(check bool) "precision above bound" true (p >= 0.8)
  | None -> Alcotest.fail "expected precision"

(* ---- Distinct counting ---- *)

module Distinct = Dream_sketch.Distinct
module Super_spreader = Dream_sketch.Super_spreader

let test_distinct_counts () =
  let d = Distinct.create ~bits:1024 ~seed:3 in
  for i = 1 to 100 do
    Distinct.add d i
  done;
  (* Re-adding the same elements must not move the estimate. *)
  for i = 1 to 100 do
    Distinct.add d i
  done;
  let est = Distinct.estimate d in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.1f near 100" est)
    true
    (Float.abs (est -. 100.0) < 15.0)

let test_distinct_empty_and_saturated () =
  let d = Distinct.create ~bits:8 ~seed:1 in
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Distinct.estimate d);
  for i = 0 to 999 do
    Distinct.add d i
  done;
  Alcotest.(check bool) "saturates" true (Distinct.saturated d);
  Distinct.reset d;
  Alcotest.(check (float 1e-9)) "reset" 0.0 (Distinct.estimate d)

let test_distinct_merge () =
  let a = Distinct.create ~bits:512 ~seed:5 and b = Distinct.create ~bits:512 ~seed:5 in
  for i = 1 to 50 do
    Distinct.add a i
  done;
  for i = 26 to 75 do
    Distinct.add b i
  done;
  Distinct.merge_into a b;
  let est = Distinct.estimate a in
  Alcotest.(check bool)
    (Printf.sprintf "union %.1f near 75" est)
    true
    (Float.abs (est -. 75.0) < 15.0);
  let c = Distinct.create ~bits:256 ~seed:5 in
  Alcotest.check_raises "size mismatch" (Invalid_argument "Distinct.merge_into: size mismatch")
    (fun () -> Distinct.merge_into a c)

(* ---- Sampled HH (NetFlow-style baseline) ---- *)

module Sampled_hh = Dream_sketch.Sampled_hh

let test_sampled_full_budget_exact () =
  (* With a budget covering every flow, sampling is exact. *)
  let task = Sampled_hh.create ~spec:(F.spec ()) ~budget:1000 ~seed:3 () in
  Sampled_hh.observe_epoch task (example_aggregate ());
  Alcotest.(check (float 1e-9)) "recall 1" 1.0
    (Sampled_hh.real_accuracy task (example_aggregate ()) ~precision:false);
  Alcotest.(check (float 1e-9)) "precision 1" 1.0
    (Sampled_hh.real_accuracy task (example_aggregate ()) ~precision:true)

let test_sampled_small_budget_lossy () =
  (* A budget of 2 records out of 8 flows misses heavy hitters some
     epochs: average recall over many epochs sits strictly below 1. *)
  let task = Sampled_hh.create ~spec:(F.spec ()) ~budget:2 ~seed:5 () in
  let recalls = ref [] in
  for _ = 1 to 50 do
    Sampled_hh.observe_epoch task (example_aggregate ());
    recalls :=
      Sampled_hh.real_accuracy task (example_aggregate ()) ~precision:false :: !recalls
  done;
  let mean = List.fold_left ( +. ) 0.0 !recalls /. 50.0 in
  Alcotest.(check bool) (Printf.sprintf "mean recall %.2f below 1" mean) true (mean < 0.999);
  Alcotest.(check bool) "but not hopeless" true (mean > 0.1)

let test_sampled_invalid () =
  Alcotest.check_raises "budget 0" (Invalid_argument "Sampled_hh.create: budget must be positive")
    (fun () -> ignore (Sampled_hh.create ~spec:(F.spec ()) ~budget:0 ~seed:1 ()))

(* ---- Super-spreader ---- *)

let scan_epoch sketch =
  Super_spreader.begin_epoch sketch;
  (* 50 normal sources contacting 3 destinations each... *)
  for src = 1 to 50 do
    for dst = 1 to 3 do
      Super_spreader.observe sketch ~src ~dst:((src * 100) + dst)
    done
  done;
  (* ... and two scanners sweeping 200 destinations. *)
  List.iter
    (fun src ->
      for dst = 1 to 200 do
        Super_spreader.observe sketch ~src ~dst
      done)
    [ 777; 888 ]

let test_spreader_detects_scanners () =
  let sketch = Super_spreader.create ~cells:4096 ~threshold:50 ~seed:11 () in
  scan_epoch sketch;
  let detected = List.map fst (Super_spreader.detected sketch) in
  Alcotest.(check (list int)) "exactly the scanners" [ 777; 888 ] detected;
  Alcotest.(check bool) "high estimated precision" true
    (Super_spreader.estimate_precision sketch > 0.9)

let test_spreader_perfect_recall_small_sketch () =
  (* Collisions only inflate fan-out, so scanners are always detected. *)
  let sketch = Super_spreader.create ~cells:16 ~threshold:50 ~seed:13 () in
  scan_epoch sketch;
  let detected = List.map fst (Super_spreader.detected sketch) in
  Alcotest.(check bool) "777 detected" true (List.mem 777 detected);
  Alcotest.(check bool) "888 detected" true (List.mem 888 detected);
  (* And the tiny sketch knows it may be over-reporting. *)
  Alcotest.(check bool) "estimated precision drops" true
    (Super_spreader.estimate_precision sketch < 1.0)

let test_spreader_epoch_reset () =
  let sketch = Super_spreader.create ~cells:4096 ~threshold:50 ~seed:11 () in
  scan_epoch sketch;
  Super_spreader.begin_epoch sketch;
  Alcotest.(check int) "no detections after reset" 0
    (List.length (Super_spreader.detected sketch))

let () =
  Alcotest.run "dream.sketch"
    [
      ( "count-min",
        [
          Alcotest.test_case "create invalid" `Quick test_cm_create_invalid;
          Alcotest.test_case "basic counts" `Quick test_cm_basic_counts;
          Alcotest.test_case "unseen key" `Quick test_cm_unseen_key_small;
          Alcotest.test_case "reset" `Quick test_cm_reset;
          Alcotest.test_case "merge" `Quick test_cm_merge;
          Alcotest.test_case "merge mismatch" `Quick test_cm_merge_mismatch;
          Alcotest.test_case "error bound definition" `Quick test_cm_error_bound_definition;
          QCheck_alcotest.to_alcotest prop_cm_never_undercounts;
          QCheck_alcotest.to_alcotest prop_cm_merge_equals_concat;
        ] );
      ( "sketch-hh",
        [
          Alcotest.test_case "perfect recall, exact detection" `Quick test_sketch_hh_perfect_recall;
          Alcotest.test_case "recall always 1" `Quick test_sketch_hh_recall_never_below_one;
          Alcotest.test_case "small sketch, lower precision" `Quick
            test_sketch_hh_small_sketch_lower_precision;
          Alcotest.test_case "resize" `Quick test_sketch_hh_resize;
          Alcotest.test_case "estimator sane" `Quick test_sketch_estimator_is_pessimistic;
        ] );
      ( "distinct",
        [
          Alcotest.test_case "counts" `Quick test_distinct_counts;
          Alcotest.test_case "empty and saturated" `Quick test_distinct_empty_and_saturated;
          Alcotest.test_case "merge" `Quick test_distinct_merge;
        ] );
      ( "sampled-hh",
        [
          Alcotest.test_case "full budget is exact" `Quick test_sampled_full_budget_exact;
          Alcotest.test_case "small budget is lossy" `Quick test_sampled_small_budget_lossy;
          Alcotest.test_case "invalid budget" `Quick test_sampled_invalid;
        ] );
      ( "super-spreader",
        [
          Alcotest.test_case "detects scanners" `Quick test_spreader_detects_scanners;
          Alcotest.test_case "perfect recall on tiny sketch" `Quick
            test_spreader_perfect_recall_small_sketch;
          Alcotest.test_case "epoch reset" `Quick test_spreader_epoch_reset;
        ] );
      ( "sketch-pool",
        [
          Alcotest.test_case "admission and allocation" `Quick test_pool_admission_and_allocation;
          Alcotest.test_case "precision converges" `Quick test_pool_precision_converges;
        ] );
    ]
