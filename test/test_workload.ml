(* Tests for dream.workload: scenario plumbing and the arrival schedule. *)

module Prefix = Dream_prefix.Prefix
module Task_spec = Dream_tasks.Task_spec
module Scenario = Dream_workload.Scenario
module Arrival = Dream_workload.Arrival

let test_default_scenario_sane () =
  let s = Scenario.default in
  Alcotest.(check bool) "concurrency positive" true (Scenario.concurrency s > 1.0);
  Alcotest.(check bool) "window within run" true (s.Scenario.arrival_window < s.Scenario.total_epochs)

let test_with_kind () =
  let s = Scenario.with_kind Scenario.default Task_spec.Change_detection in
  Alcotest.(check bool) "single kind" true (s.Scenario.kinds = [ Task_spec.Change_detection ])

let test_schedule_count_and_order () =
  let subs = Arrival.schedule Scenario.default in
  Alcotest.(check int) "one submission per task" Scenario.default.Scenario.num_tasks
    (List.length subs);
  let rec sorted = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a.Arrival.arrival <= b.Arrival.arrival && sorted rest
  in
  Alcotest.(check bool) "sorted by arrival" true (sorted subs);
  List.iter
    (fun s ->
      Alcotest.(check bool) "arrival in window" true
        (s.Arrival.arrival >= 0 && s.Arrival.arrival < Scenario.default.Scenario.arrival_window);
      Alcotest.(check bool) "duration floored" true
        (s.Arrival.duration >= Scenario.default.Scenario.min_duration))
    subs

let test_schedule_distinct_filters () =
  let subs = Arrival.schedule Scenario.default in
  let filters = List.map (fun s -> s.Arrival.spec.Task_spec.filter) subs in
  Alcotest.(check int) "all distinct" (List.length filters)
    (List.length (List.sort_uniq Prefix.compare filters))

let test_schedule_kind_mix () =
  let subs = Arrival.schedule Scenario.default in
  List.iter
    (fun kind ->
      let n =
        List.length (List.filter (fun s -> s.Arrival.spec.Task_spec.kind = kind) subs)
      in
      Alcotest.(check bool)
        (Printf.sprintf "kind %s present" (Task_spec.kind_to_string kind))
        true (n > 0))
    Task_spec.all_kinds

let test_schedule_deterministic () =
  let a = Arrival.schedule Scenario.default and b = Arrival.schedule Scenario.default in
  List.iter2
    (fun x y ->
      Alcotest.(check int) "same arrival" x.Arrival.arrival y.Arrival.arrival;
      Alcotest.(check int) "same duration" x.Arrival.duration y.Arrival.duration;
      Alcotest.(check bool) "same filter" true
        (Prefix.equal x.Arrival.spec.Task_spec.filter y.Arrival.spec.Task_spec.filter))
    a b

let test_schedule_seed_changes () =
  let a = Arrival.schedule Scenario.default in
  let b = Arrival.schedule { Scenario.default with Scenario.seed = 12345 } in
  let same =
    List.for_all2
      (fun x y -> Prefix.equal x.Arrival.spec.Task_spec.filter y.Arrival.spec.Task_spec.filter)
      a b
  in
  Alcotest.(check bool) "different seeds give different filters" false same

let test_schedule_respects_spec_fields () =
  let scenario =
    { Scenario.default with Scenario.threshold = 16.0; accuracy_bound = 0.7; leaf_length = 28 }
  in
  List.iter
    (fun s ->
      Alcotest.(check (float 1e-9)) "threshold" 16.0 s.Arrival.spec.Task_spec.threshold;
      Alcotest.(check (float 1e-9)) "bound" 0.7 s.Arrival.spec.Task_spec.accuracy_bound;
      Alcotest.(check int) "leaf length" 28 s.Arrival.spec.Task_spec.leaf_length)
    (Arrival.schedule scenario)

let () =
  Alcotest.run "dream.workload"
    [
      ( "scenario",
        [
          Alcotest.test_case "default sane" `Quick test_default_scenario_sane;
          Alcotest.test_case "with_kind" `Quick test_with_kind;
        ] );
      ( "arrival",
        [
          Alcotest.test_case "count and order" `Quick test_schedule_count_and_order;
          Alcotest.test_case "distinct filters" `Quick test_schedule_distinct_filters;
          Alcotest.test_case "kind mix" `Quick test_schedule_kind_mix;
          Alcotest.test_case "deterministic" `Quick test_schedule_deterministic;
          Alcotest.test_case "seed changes schedule" `Quick test_schedule_seed_changes;
          Alcotest.test_case "respects spec fields" `Quick test_schedule_respects_spec_fields;
        ] );
    ]
