(* Tests for dream.alloc: step policies, the DREAM per-switch allocator
   (admission, redistribution, phantom headroom, invariants), and the
   Equal / Fixed baselines. *)

module Switch_id = Dream_traffic.Switch_id
module Step_policy = Dream_alloc.Step_policy
module Task_view = Dream_alloc.Task_view
module Dream_allocator = Dream_alloc.Dream_allocator
module Equal_allocator = Dream_alloc.Equal_allocator
module Fixed_allocator = Dream_alloc.Fixed_allocator
module Allocator = Dream_alloc.Allocator

let params = Step_policy.default_params

(* ---- Step policies ---- *)

let test_step_mm () =
  Alcotest.(check int) "grow doubles" 8 (Step_policy.grow Step_policy.MM params 4);
  Alcotest.(check int) "shrink halves" 4 (Step_policy.shrink Step_policy.MM params 8)

let test_step_aa () =
  Alcotest.(check int) "grow +4" 8 (Step_policy.grow Step_policy.AA params 4);
  Alcotest.(check int) "shrink -4" 4 (Step_policy.shrink Step_policy.AA params 8)

let test_step_mixed () =
  Alcotest.(check int) "AM grows additively" 8 (Step_policy.grow Step_policy.AM params 4);
  Alcotest.(check int) "AM shrinks multiplicatively" 4 (Step_policy.shrink Step_policy.AM params 8);
  Alcotest.(check int) "MA grows multiplicatively" 8 (Step_policy.grow Step_policy.MA params 4);
  Alcotest.(check int) "MA shrinks additively" 4 (Step_policy.shrink Step_policy.MA params 8)

let test_step_clamped () =
  Alcotest.(check int) "never below min" params.Step_policy.min_step
    (Step_policy.shrink Step_policy.AA params 2);
  Alcotest.(check int) "never above max" params.Step_policy.max_step
    (Step_policy.grow Step_policy.MM params params.Step_policy.max_step)

let test_step_string_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check bool) "roundtrip" true
        (Step_policy.of_string (Step_policy.to_string p) = Some p))
    Step_policy.all;
  Alcotest.(check bool) "unknown" true (Step_policy.of_string "XY" = None)

(* ---- DREAM allocator helpers ---- *)

let switches01 = Switch_id.set_of_list [ 0; 1 ]

(* A task view with a controllable accuracy cell. *)
let view ?(switches = switches01) ?(bound = 0.8) ?(priority = 0) ~id ~accuracy ~used () =
  {
    Task_view.id;
    switches;
    bound;
    drop_priority = priority;
    overall = (fun _ -> !accuracy);
    used = (fun _ -> !used);
  }

let mk_allocator ?(config = Dream_allocator.default_config) ?(capacity = 1000) () =
  Dream_allocator.create config ~capacities:[ (0, capacity); (1, capacity) ]

let total_alloc a ~task_id =
  Switch_id.Map.fold (fun _ v acc -> acc + v) (Dream_allocator.allocation_of a ~task_id) 0

let check_invariants a =
  match Dream_allocator.check_invariants a with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* ---- DREAM allocator ---- *)

let test_admit_takes_from_phantom () =
  let a = mk_allocator () in
  Alcotest.(check int) "phantom starts at capacity" 1000 (Dream_allocator.phantom a 0);
  let acc = ref 0.0 and used = ref 1 in
  Alcotest.(check bool) "admitted" true
    (Dream_allocator.try_admit a (view ~id:0 ~accuracy:acc ~used ()));
  Alcotest.(check int) "one counter per switch" 2 (total_alloc a ~task_id:0);
  Alcotest.(check int) "phantom decremented" 999 (Dream_allocator.phantom a 0);
  check_invariants a

let test_admission_rejects_without_headroom () =
  (* Tiny switch: capacity 20, headroom target 1 (5%).  Fill it with poor
     demanding tasks until admission fails. *)
  let a = mk_allocator ~capacity:20 () in
  let mk i =
    let acc = ref 0.0 in
    (* always poor *)
    let alloc = ref 1 in
    (view ~id:i ~accuracy:acc ~used:alloc (), alloc)
  in
  let tasks = List.init 12 mk in
  let admitted =
    List.filter (fun (v, _) -> Dream_allocator.try_admit a v) tasks
  in
  (* Everyone is poor and demanding: after some rounds the phantom drains
     and admission must refuse new tasks. *)
  let views = List.map fst admitted in
  for _ = 1 to 10 do
    Dream_allocator.reallocate a views;
    (* Track each task's usage = its allocation (always demanding). *)
    List.iter
      (fun (v, alloc) ->
        if List.memq v views then
          alloc := Dream_allocator.allocation_of a ~task_id:v.Task_view.id |> fun m ->
                   (match Switch_id.Map.find_opt 0 m with Some x -> x | None -> 0))
      admitted
  done;
  check_invariants a;
  let acc = ref 0.0 and used = ref 1 in
  Alcotest.(check bool) "late arrival rejected" false
    (Dream_allocator.try_admit a (view ~id:99 ~accuracy:acc ~used ()))

let test_redistribution_rich_to_poor () =
  let a = mk_allocator ~capacity:200 () in
  let rich_acc = ref 0.95 and poor_acc = ref 0.3 in
  let rich_used = ref 0 and poor_used = ref 0 in
  let rich = view ~id:0 ~accuracy:rich_acc ~used:rich_used () in
  let poor = view ~id:1 ~accuracy:poor_acc ~used:poor_used () in
  ignore (Dream_allocator.try_admit a rich);
  ignore (Dream_allocator.try_admit a poor);
  (* Let the rich task accumulate (it is "demanding" while using all). *)
  let sync_used () =
    rich_used :=
      (match Switch_id.Map.find_opt 0 (Dream_allocator.allocation_of a ~task_id:0) with
      | Some v -> v
      | None -> 0);
    poor_used :=
      (match Switch_id.Map.find_opt 0 (Dream_allocator.allocation_of a ~task_id:1) with
      | Some v -> v
      | None -> 0)
  in
  for _ = 1 to 8 do
    sync_used ();
    Dream_allocator.reallocate a [ rich; poor ]
  done;
  check_invariants a;
  let rich_total = total_alloc a ~task_id:0 and poor_total = total_alloc a ~task_id:1 in
  Alcotest.(check bool)
    (Printf.sprintf "poor grew past rich (%d vs %d)" poor_total rich_total)
    true (poor_total > rich_total)

let test_allocation_floor () =
  let a = mk_allocator ~capacity:100 () in
  let rich_acc = ref 1.0 and poor_acc = ref 0.0 in
  let rich_used = ref 1 and poor_used = ref 100 in
  let rich = view ~id:0 ~accuracy:rich_acc ~used:rich_used () in
  let poor = view ~id:1 ~accuracy:poor_acc ~used:poor_used () in
  ignore (Dream_allocator.try_admit a rich);
  ignore (Dream_allocator.try_admit a poor);
  for _ = 1 to 20 do
    poor_used :=
      (match Switch_id.Map.find_opt 0 (Dream_allocator.allocation_of a ~task_id:1) with
      | Some v -> v
      | None -> 0);
    Dream_allocator.reallocate a [ rich; poor ]
  done;
  check_invariants a;
  Switch_id.Map.iter
    (fun _ v -> Alcotest.(check bool) "rich keeps at least the floor" true (v >= 1))
    (Dream_allocator.allocation_of a ~task_id:0)

let test_release_returns_to_phantom () =
  let a = mk_allocator () in
  let acc = ref 0.0 and used = ref 1 in
  ignore (Dream_allocator.try_admit a (view ~id:0 ~accuracy:acc ~used ()));
  Dream_allocator.release a ~task_id:0;
  Alcotest.(check int) "phantom restored" 1000 (Dream_allocator.phantom a 0);
  Alcotest.(check int) "no allocation left" 0 (total_alloc a ~task_id:0);
  check_invariants a

let test_surplus_flows_to_users () =
  (* One task using everything it has, idle capacity around: its allocation
     should keep growing from the surplus even while it is neutral. *)
  let a = mk_allocator ~capacity:500 () in
  let acc = ref 0.85 in
  (* neutral: in (bound, bound + hysteresis) *)
  let used = ref 1 in
  let v = view ~id:0 ~accuracy:acc ~used () in
  ignore (Dream_allocator.try_admit a v);
  for _ = 1 to 6 do
    used :=
      (match Switch_id.Map.find_opt 0 (Dream_allocator.allocation_of a ~task_id:0) with
      | Some x -> x
      | None -> 0);
    Dream_allocator.reallocate a [ v ]
  done;
  check_invariants a;
  Alcotest.(check bool) "absorbed idle capacity" true (total_alloc a ~task_id:0 > 50);
  Alcotest.(check bool) "phantom stays at target" true (Dream_allocator.phantom a 0 >= 25)

let test_unused_allocation_reclaimed () =
  let a = mk_allocator ~capacity:500 () in
  let acc = ref 0.3 in
  (* poor but unable to use more counters *)
  let used = ref 1 in
  let v = view ~id:0 ~accuracy:acc ~used () in
  ignore (Dream_allocator.try_admit a v);
  (* Give it a lot while demanding... *)
  for _ = 1 to 6 do
    used :=
      (match Switch_id.Map.find_opt 0 (Dream_allocator.allocation_of a ~task_id:0) with
      | Some x -> x
      | None -> 0);
    Dream_allocator.reallocate a [ v ]
  done;
  let peak = total_alloc a ~task_id:0 in
  (* ...then freeze its usage low: the allocator must reclaim the excess. *)
  used := 4;
  for _ = 1 to 20 do
    Dream_allocator.reallocate a [ v ]
  done;
  check_invariants a;
  let final = total_alloc a ~task_id:0 in
  Alcotest.(check bool)
    (Printf.sprintf "reclaimed %d -> %d" peak final)
    true
    (final < peak / 2)

let test_congestion_flag () =
  let a = mk_allocator ~capacity:40 () in
  (* Many always-poor, always-demanding tasks exhaust supply. *)
  let mk i =
    let acc = ref 0.0 in
    let used = ref 1000 in
    (* claims to use everything *)
    view ~id:i ~accuracy:acc ~used ()
  in
  let views = List.map mk [ 0; 1; 2; 3 ] in
  List.iter (fun v -> ignore (Dream_allocator.try_admit a v)) views;
  for _ = 1 to 6 do
    Dream_allocator.reallocate a views
  done;
  Alcotest.(check bool) "congested" true (Dream_allocator.congested a 0);
  check_invariants a

let test_drop_priority_order_under_shortage () =
  let a = mk_allocator ~capacity:64 () in
  let mk i priority =
    let acc = ref 0.0 in
    let used = ref 1000 in
    view ~id:i ~priority ~accuracy:acc ~used ()
  in
  (* Low priority value = served first under shortage. *)
  let precious = mk 0 0 and expendable = mk 1 100 in
  ignore (Dream_allocator.try_admit a precious);
  ignore (Dream_allocator.try_admit a expendable);
  for _ = 1 to 8 do
    Dream_allocator.reallocate a [ precious; expendable ]
  done;
  check_invariants a;
  Alcotest.(check bool) "low drop priority got more" true
    (total_alloc a ~task_id:0 >= total_alloc a ~task_id:1)

let prop_invariants_random_rounds =
  QCheck.Test.make ~name:"allocations + phantom = capacity under random rounds" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 20) (pair (int_bound 100) bool))
    (fun script ->
      let a = mk_allocator ~capacity:300 () in
      let tasks = Hashtbl.create 8 in
      let next_id = ref 0 in
      List.iter
        (fun (accuracy_pct, arrive) ->
          if arrive || Hashtbl.length tasks = 0 then begin
            let id = !next_id in
            incr next_id;
            let acc = ref (float_of_int accuracy_pct /. 100.0) in
            let used = ref 10 in
            let v = view ~id ~accuracy:acc ~used () in
            if Dream_allocator.try_admit a v then Hashtbl.replace tasks id (v, acc, used)
          end
          else begin
            (* Perturb accuracies and usage, then run a round. *)
            Hashtbl.iter
              (fun id (_, acc, used) ->
                acc := float_of_int ((accuracy_pct + (id * 17)) mod 101) /. 100.0;
                used :=
                  (match
                     Switch_id.Map.find_opt 0 (Dream_allocator.allocation_of a ~task_id:id)
                   with
                  | Some x -> x
                  | None -> 0))
              tasks;
            let views = Hashtbl.fold (fun _ (v, _, _) l -> v :: l) tasks [] in
            Dream_allocator.reallocate a views
          end)
        script;
      Dream_allocator.check_invariants a = Ok ())

(* ---- Equal ---- *)

let test_equal_shares () =
  let e = Equal_allocator.create ~capacities:[ (0, 100) ] in
  let mk i = view ~switches:(Switch_id.Set.singleton 0) ~id:i ~accuracy:(ref 0.5) ~used:(ref 1) () in
  Equal_allocator.admit e (mk 0);
  Equal_allocator.admit e (mk 1);
  Equal_allocator.admit e (mk 2);
  Alcotest.(check int) "three tasks" 3 (Equal_allocator.tasks_on e 0);
  let total =
    List.fold_left
      (fun acc id ->
        acc
        + (match Switch_id.Map.find_opt 0 (Equal_allocator.allocation_of e ~task_id:id) with
          | Some v -> v
          | None -> 0))
      0 [ 0; 1; 2 ]
  in
  Alcotest.(check int) "shares fill capacity" 100 total;
  Equal_allocator.release e ~task_id:1;
  Alcotest.(check int) "share grows after release" 50
    (match Switch_id.Map.find_opt 0 (Equal_allocator.allocation_of e ~task_id:0) with
    | Some v -> v
    | None -> 0)

let test_equal_more_tasks_than_capacity () =
  let e = Equal_allocator.create ~capacities:[ (0, 2) ] in
  let mk i = view ~switches:(Switch_id.Set.singleton 0) ~id:i ~accuracy:(ref 0.5) ~used:(ref 1) () in
  List.iter (fun i -> Equal_allocator.admit e (mk i)) [ 0; 1; 2; 3 ];
  let allocs =
    List.map
      (fun id ->
        match Switch_id.Map.find_opt 0 (Equal_allocator.allocation_of e ~task_id:id) with
        | Some v -> v
        | None -> 0)
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check int) "sum within capacity" 2 (List.fold_left ( + ) 0 allocs)

(* ---- Fixed ---- *)

let test_fixed_admission () =
  let f = Fixed_allocator.create ~fraction_denominator:4 ~capacities:[ (0, 100) ] in
  Alcotest.(check int) "share" 25 (Fixed_allocator.share f 0);
  let mk i = view ~switches:(Switch_id.Set.singleton 0) ~id:i ~accuracy:(ref 0.5) ~used:(ref 1) () in
  Alcotest.(check bool) "1" true (Fixed_allocator.try_admit f (mk 0));
  Alcotest.(check bool) "2" true (Fixed_allocator.try_admit f (mk 1));
  Alcotest.(check bool) "3" true (Fixed_allocator.try_admit f (mk 2));
  Alcotest.(check bool) "4" true (Fixed_allocator.try_admit f (mk 3));
  Alcotest.(check bool) "5 rejected" false (Fixed_allocator.try_admit f (mk 4));
  Fixed_allocator.release f ~task_id:0;
  Alcotest.(check bool) "admits again after release" true (Fixed_allocator.try_admit f (mk 5))

let test_fixed_invalid () =
  Alcotest.check_raises "k = 0"
    (Invalid_argument "Fixed_allocator.create: fraction denominator must be positive") (fun () ->
      ignore (Fixed_allocator.create ~fraction_denominator:0 ~capacities:[ (0, 100) ]))

(* ---- Facade ---- *)

let test_facade_names () =
  Alcotest.(check string) "dream" "DREAM"
    (Allocator.strategy_name (Allocator.Dream Dream_allocator.default_config));
  Alcotest.(check string) "equal" "Equal" (Allocator.strategy_name Allocator.Equal);
  Alcotest.(check string) "fixed" "Fixed_32" (Allocator.strategy_name (Allocator.Fixed 32))

let test_facade_drop_support () =
  let caps = [ (0, 100) ] in
  Alcotest.(check bool) "dream drops" true
    (Allocator.supports_drop (Allocator.create (Allocator.Dream Dream_allocator.default_config) ~capacities:caps));
  Alcotest.(check bool) "equal never drops" false
    (Allocator.supports_drop (Allocator.create Allocator.Equal ~capacities:caps));
  Alcotest.(check bool) "fixed never drops" false
    (Allocator.supports_drop (Allocator.create (Allocator.Fixed 32) ~capacities:caps))

let () =
  Alcotest.run "dream.alloc"
    [
      ( "step-policy",
        [
          Alcotest.test_case "MM" `Quick test_step_mm;
          Alcotest.test_case "AA" `Quick test_step_aa;
          Alcotest.test_case "AM and MA" `Quick test_step_mixed;
          Alcotest.test_case "clamped" `Quick test_step_clamped;
          Alcotest.test_case "string roundtrip" `Quick test_step_string_roundtrip;
        ] );
      ( "dream",
        [
          Alcotest.test_case "admit takes from phantom" `Quick test_admit_takes_from_phantom;
          Alcotest.test_case "admission rejects without headroom" `Quick
            test_admission_rejects_without_headroom;
          Alcotest.test_case "redistributes rich to poor" `Quick test_redistribution_rich_to_poor;
          Alcotest.test_case "allocation floor" `Quick test_allocation_floor;
          Alcotest.test_case "release returns to phantom" `Quick test_release_returns_to_phantom;
          Alcotest.test_case "surplus flows to users" `Quick test_surplus_flows_to_users;
          Alcotest.test_case "unused allocation reclaimed" `Quick test_unused_allocation_reclaimed;
          Alcotest.test_case "congestion flag" `Quick test_congestion_flag;
          Alcotest.test_case "priority under shortage" `Quick
            test_drop_priority_order_under_shortage;
          QCheck_alcotest.to_alcotest prop_invariants_random_rounds;
        ] );
      ( "equal",
        [
          Alcotest.test_case "shares" `Quick test_equal_shares;
          Alcotest.test_case "more tasks than capacity" `Quick test_equal_more_tasks_than_capacity;
        ] );
      ( "fixed",
        [
          Alcotest.test_case "admission" `Quick test_fixed_admission;
          Alcotest.test_case "invalid" `Quick test_fixed_invalid;
        ] );
      ( "facade",
        [
          Alcotest.test_case "names" `Quick test_facade_names;
          Alcotest.test_case "drop support" `Quick test_facade_drop_support;
        ] );
    ]
