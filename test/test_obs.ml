(* Telemetry subsystem tests: JSON round-trips, the metrics registry, the
   trace, the mockable clock — and the two end-to-end guarantees the design
   leans on: an attached bundle never perturbs the simulation (zero-diff),
   and everything [Telemetry.write_dir] emits loads back through
   [Inspect.load] with counters that match the run. *)

module Json = Dream_obs.Json
module Registry = Dream_obs.Registry
module Trace = Dream_obs.Trace
module Clock = Dream_obs.Clock
module Telemetry = Dream_obs.Telemetry
module Inspect = Dream_obs.Inspect
module Scenario = Dream_workload.Scenario
module Config = Dream_core.Config
module Metrics = Dream_core.Metrics
module Fault_model = Dream_fault.Fault_model
module Experiment = Dream_sim.Experiment
module Fig06 = Dream_sim.Fig06

(* {1 Json} *)

let test_json_round_trip () =
  let v =
    Json.Obj
      [
        ("t", Json.Str "event");
        ("epoch", Json.Int 12);
        ("ms", Json.Float 0.25);
        ("tags", Json.List [ Json.Str "a\"b\\c"; Json.Null; Json.Bool true ]);
      ]
  in
  (match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round trip" true (v = v')
  | Error e -> Alcotest.failf "reparse failed: %s" e);
  (* Floats keep their floatness through the round trip. *)
  (match Json.of_string (Json.to_string (Json.Float 3.0)) with
  | Ok (Json.Float f) -> Alcotest.(check (float 1e-9)) "float stays float" 3.0 f
  | Ok _ -> Alcotest.fail "3.0 reparsed as non-float"
  | Error e -> Alcotest.failf "reparse failed: %s" e);
  (* Non-finite floats have no JSON spelling. *)
  Alcotest.(check string) "nan renders null" "null" (Json.to_string (Json.Float Float.nan))

let test_json_rejects_garbage () =
  let bad s =
    match Json.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "{\"a\":1,}";
  bad "1 2";
  bad "{\"a\" 1}"

(* {1 Registry} *)

let test_registry_find_or_create () =
  let reg = Registry.create () in
  let a = Registry.counter reg "ticks" in
  let b = Registry.counter reg "ticks" in
  Registry.Counter.incr a;
  Registry.Counter.add b 2;
  Alcotest.(check int) "one shared cell" 3 (Registry.Counter.value a);
  (* Label order is irrelevant to identity. *)
  let l1 = Registry.counter reg ~labels:[ ("x", "1"); ("y", "2") ] "labelled" in
  let l2 = Registry.counter reg ~labels:[ ("y", "2"); ("x", "1") ] "labelled" in
  Registry.Counter.incr l1;
  Alcotest.(check int) "labels sorted into one identity" 1 (Registry.Counter.value l2);
  (* Different labels, different cell. *)
  let l3 = Registry.counter reg ~labels:[ ("x", "9") ] "labelled" in
  Alcotest.(check int) "distinct labels distinct cell" 0 (Registry.Counter.value l3)

let test_registry_kind_mismatch () =
  let reg = Registry.create () in
  ignore (Registry.counter reg "m");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Registry: m is a counter, requested as a gauge") (fun () ->
      ignore (Registry.gauge reg "m"))

let test_histogram_percentiles () =
  let reg = Registry.create () in
  let h = Registry.histogram reg "lat" in
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan (Registry.Histogram.percentile h 50.0));
  for i = 1 to 100 do
    Registry.Histogram.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Registry.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 5050.0 (Registry.Histogram.sum h);
  let p50 = Registry.Histogram.percentile h 50.0 in
  (* Log-scale buckets with gamma 1.25 bound the relative error. *)
  Alcotest.(check bool) "p50 within bucket error" true (p50 >= 40.0 && p50 <= 63.0);
  Alcotest.(check (float 1e-9)) "p100 clamped to observed max" 100.0
    (Registry.Histogram.percentile h 100.0);
  Alcotest.(check (float 1e-9)) "p0 clamped to observed min" 1.0
    (Registry.Histogram.percentile h 0.0);
  (* The underflow bucket catches non-positive observations. *)
  Registry.Histogram.observe h (-5.0);
  Alcotest.(check (float 1e-9)) "min tracks underflow" (-5.0) (Registry.Histogram.min_value h)

let test_prometheus_conformance () =
  let reg = Registry.create () in
  (* An awkward metric: spaces in the name, a label key starting with a
     digit, and a label value holding every character the exposition
     format escapes. *)
  let c =
    Registry.counter reg
      ~help:"crashes seen\nby the run \\ total"
      ~labels:[ ("kind", "a\"b\\c\nd"); ("9bad key", "v") ]
      "crash count"
  in
  Registry.Counter.add c 3;
  ignore (Registry.counter reg ~help:"second registration loses" "crash count");
  Registry.Histogram.observe (Registry.histogram reg "phase_ms") 3.7;
  let out = Registry.to_prometheus reg in
  let lines = String.split_on_char '\n' out in
  let index_where descr p =
    let rec go i = function
      | [] -> Alcotest.failf "no line matches %s" descr
      | l :: rest -> if p l then i else go (i + 1) rest
    in
    go 0 lines
  in
  let count p = List.length (List.filter p lines) in
  (* HELP precedes TYPE, once per family, first registration's text wins;
     backslash and newline are escaped (quotes are legal in help text). *)
  let help_i =
    index_where "HELP line"
      (String.equal "# HELP dream_crash_count_total crashes seen\\nby the run \\\\ total")
  in
  let type_i = index_where "TYPE line" (String.equal "# TYPE dream_crash_count_total counter") in
  Alcotest.(check bool) "help precedes type" true (help_i < type_i);
  Alcotest.(check int) "one TYPE per family" 1
    (count (String.starts_with ~prefix:"# TYPE dream_crash_count_total"));
  Alcotest.(check int) "one HELP per family" 1
    (count (String.starts_with ~prefix:"# HELP dream_crash_count_total"));
  (* Labels sorted by key; the bad key is sanitized to [a-zA-Z_][a-zA-Z0-9_]*
     and the value escapes backslash, quote and newline. *)
  ignore
    (index_where "escaped sample line"
       (String.equal "dream_crash_count_total{_bad_key=\"v\",kind=\"a\\\"b\\\\c\\nd\"} 3"));
  ignore (index_where "unlabelled sample line" (String.equal "dream_crash_count_total 0"));
  (* Histograms expose cumulative buckets plus the +Inf bound, _sum and
     _count. *)
  ignore (index_where "histogram type" (String.equal "# TYPE dream_phase_ms histogram"));
  ignore
    (index_where "+Inf bucket" (String.equal "dream_phase_ms_bucket{le=\"+Inf\"} 1"));
  ignore (index_where "histogram count" (String.equal "dream_phase_ms_count 1"));
  ignore (index_where "histogram sum" (String.equal "dream_phase_ms_sum 3.7"))

(* {1 Trace} *)

let test_trace_round_trip () =
  let tr = Trace.create () in
  Trace.span tr ~epoch:3 ~phase:"fetch" ~ms:1.5;
  Trace.event tr ~epoch:3 ~name:"task_admit" [ ("task", Trace.Int 7); ("kind", Trace.Str "hh") ];
  Alcotest.(check int) "two items" 2 (Trace.length tr);
  List.iter
    (fun item ->
      match Trace.item_of_json (Trace.item_to_json item) with
      | Ok item' -> Alcotest.(check bool) "item survives json" true (item = item')
      | Error e -> Alcotest.failf "item_of_json: %s" e)
    (Trace.items tr)

let test_trace_reserved_keys () =
  let tr = Trace.create () in
  Alcotest.check_raises "reserved field key"
    (Invalid_argument "Trace.event: reserved field key \"epoch\"") (fun () ->
      Trace.event tr ~epoch:0 ~name:"x" [ ("epoch", Trace.Int 1) ])

(* {1 Clock} *)

let test_manual_clock () =
  let clock, handle = Clock.manual ~start:100.0 () in
  Alcotest.(check (float 1e-9)) "starts where told" 100.0 (Clock.now_ms clock);
  Clock.advance handle 2.5;
  Clock.advance handle 0.0;
  Alcotest.(check (float 1e-9)) "advances by ms" 102.5 (Clock.now_ms clock);
  Alcotest.check_raises "monotonic" (Invalid_argument "Clock.advance: negative step") (fun () ->
      Clock.advance handle (-1.0))

(* {1 End to end} *)

(* Small but eventful: compressed timeline, few switches, faults on so the
   crash/retry/reconcile paths all run. *)
let scenario =
  let s = Fig06.quick_scale Scenario.default in
  { s with Scenario.num_switches = 8; num_tasks = 8; total_epochs = 40 }

let config ~telemetry =
  { Config.default with Config.faults = Some (Fault_model.uniform ~seed:41 0.08); telemetry }

let test_zero_diff () =
  let off = Experiment.run ~config:(config ~telemetry:None) scenario Experiment.dream_strategy in
  let bundle = Telemetry.create () in
  let on =
    Experiment.run ~config:(config ~telemetry:(Some bundle)) scenario Experiment.dream_strategy
  in
  Alcotest.(check bool) "summaries identical" true (off.Experiment.summary = on.Experiment.summary);
  Alcotest.(check bool) "per-epoch records identical" true
    (off.Experiment.records = on.Experiment.records);
  Alcotest.(check bool) "robustness identical" true
    (off.Experiment.robustness = on.Experiment.robustness);
  Alcotest.(check int) "rules installed identical" off.Experiment.rules_installed
    on.Experiment.rules_installed;
  Alcotest.(check int) "rules fetched identical" off.Experiment.rules_fetched
    on.Experiment.rules_fetched;
  Alcotest.(check bool) "and the instrumented run did record a trace" true
    (Trace.length (Telemetry.trace bundle) > 0)

let with_temp_dir f =
  let dir = Filename.temp_file "dream-obs-test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_export_and_inspect () =
  let bundle = Telemetry.create () in
  let result =
    Experiment.run ~config:(config ~telemetry:(Some bundle)) scenario Experiment.dream_strategy
  in
  with_temp_dir (fun dir ->
      (match Telemetry.write_dir bundle ~dir with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write_dir: %s" e);
      (* Every line of trace.jsonl is one well-formed JSON object. *)
      let ic = open_in (Filename.concat dir "trace.jsonl") in
      let lines = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lines;
           match Json.of_string line with
           | Ok (Json.Obj _) -> ()
           | Ok _ -> Alcotest.failf "trace line %d is not an object" !lines
           | Error e -> Alcotest.failf "trace line %d: %s" !lines e
         done
       with End_of_file -> close_in ic);
      Alcotest.(check int) "one JSONL line per trace item" (Trace.length (Telemetry.trace bundle))
        !lines;
      match Inspect.load dir with
      | Error e -> Alcotest.failf "Inspect.load: %s" e
      | Ok report ->
        Alcotest.(check bool) "spans recorded" true (report.Inspect.spans > 0);
        Alcotest.(check bool) "events recorded" true (report.Inspect.events > 0);
        Alcotest.(check bool) "epoch phases present" true
          (List.exists (fun p -> p.Inspect.phase = "epoch") report.Inspect.phases);
        (* The Prometheus snapshot read back agrees with the run's own
           robustness record — the dedup guarantee. *)
        let rob = result.Experiment.robustness in
        Alcotest.(check int) "crashes counter" rob.Metrics.crashes (Inspect.counter report "crashes");
        Alcotest.(check int) "fetch_timeouts counter" rob.Metrics.fetch_timeouts
          (Inspect.counter report "fetch_timeouts");
        Alcotest.(check int) "recoveries counter" rob.Metrics.recoveries
          (Inspect.counter report "recoveries");
        Alcotest.(check int) "rules_installed counter" result.Experiment.rules_installed
          (Inspect.counter report "rules_installed");
        Alcotest.(check int) "rules_fetched counter" result.Experiment.rules_fetched
          (Inspect.counter report "rules_fetched"))

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "registry",
        [
          Alcotest.test_case "find or create" `Quick test_registry_find_or_create;
          Alcotest.test_case "kind mismatch raises" `Quick test_registry_kind_mismatch;
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "prometheus conformance" `Quick test_prometheus_conformance;
        ] );
      ( "trace",
        [
          Alcotest.test_case "json round trip" `Quick test_trace_round_trip;
          Alcotest.test_case "reserved keys raise" `Quick test_trace_reserved_keys;
        ] );
      ("clock", [ Alcotest.test_case "manual clock" `Quick test_manual_clock ]);
      ( "end to end",
        [
          Alcotest.test_case "telemetry is zero-diff" `Quick test_zero_diff;
          Alcotest.test_case "export and inspect" `Quick test_export_and_inspect;
        ] );
    ]
