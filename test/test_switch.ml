(* Tests for dream.switch: TCAM capacity enforcement, incremental sync,
   counter reads against aggregates, churn statistics, and the control-loop
   delay model. *)

module Prefix = Dream_prefix.Prefix
module Flow = Dream_traffic.Flow
module Aggregate = Dream_traffic.Aggregate
module Tcam = Dream_switch.Tcam
module Switch = Dream_switch.Switch
module Delay_model = Dream_switch.Delay_model

let p = Prefix.of_string

let test_create_invalid () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Tcam.create: capacity must be positive")
    (fun () -> ignore (Tcam.create ~capacity:0))

let test_install_remove () =
  let t = Tcam.create ~capacity:4 in
  Alcotest.(check bool) "install ok" true (Tcam.install t ~owner:1 (p "10.0.0.0/8") = Ok ());
  Alcotest.(check int) "used" 1 (Tcam.used t);
  Alcotest.(check int) "used_by owner" 1 (Tcam.used_by t ~owner:1);
  Alcotest.(check bool) "duplicate" true (Tcam.install t ~owner:1 (p "10.0.0.0/8") = Error `Duplicate);
  Alcotest.(check bool) "removed" true (Tcam.remove t ~owner:1 (p "10.0.0.0/8"));
  Alcotest.(check bool) "remove absent" false (Tcam.remove t ~owner:1 (p "10.0.0.0/8"));
  Alcotest.(check int) "empty again" 0 (Tcam.used t)

let test_capacity_enforced () =
  let t = Tcam.create ~capacity:2 in
  ignore (Tcam.install t ~owner:1 (p "10.0.0.0/8"));
  ignore (Tcam.install t ~owner:2 (p "11.0.0.0/8"));
  Alcotest.(check bool) "full" true (Tcam.install t ~owner:3 (p "12.0.0.0/8") = Error `Capacity);
  Alcotest.(check int) "free" 0 (Tcam.free t)

let test_same_prefix_two_owners () =
  let t = Tcam.create ~capacity:4 in
  Alcotest.(check bool) "owner 1" true (Tcam.install t ~owner:1 (p "10.0.0.0/8") = Ok ());
  Alcotest.(check bool) "owner 2 same prefix" true (Tcam.install t ~owner:2 (p "10.0.0.0/8") = Ok ());
  Alcotest.(check int) "two entries" 2 (Tcam.used t)

let test_remove_owner () =
  let t = Tcam.create ~capacity:8 in
  ignore (Tcam.install t ~owner:1 (p "10.0.0.0/8"));
  ignore (Tcam.install t ~owner:1 (p "11.0.0.0/8"));
  ignore (Tcam.install t ~owner:2 (p "12.0.0.0/8"));
  Alcotest.(check int) "removed two" 2 (Tcam.remove_owner t ~owner:1);
  Alcotest.(check int) "other owner kept" 1 (Tcam.used t);
  Alcotest.(check (list int)) "owners" [ 2 ] (Tcam.owners t)

let test_sync_incremental () =
  let t = Tcam.create ~capacity:8 in
  let d = Tcam.sync t ~owner:1 ~prefixes:[ p "10.0.0.0/8"; p "11.0.0.0/8" ] in
  Alcotest.(check int) "added" 2 d.Tcam.added;
  Alcotest.(check int) "removed" 0 d.Tcam.removed;
  (* One rule kept, one swapped. *)
  let d = Tcam.sync t ~owner:1 ~prefixes:[ p "10.0.0.0/8"; p "12.0.0.0/8" ] in
  Alcotest.(check int) "added one" 1 d.Tcam.added;
  Alcotest.(check int) "removed one" 1 d.Tcam.removed;
  Alcotest.(check int) "still two rules" 2 (Tcam.used_by t ~owner:1);
  (* No-op sync touches nothing. *)
  let d = Tcam.sync t ~owner:1 ~prefixes:[ p "10.0.0.0/8"; p "12.0.0.0/8" ] in
  Alcotest.(check int) "noop added" 0 d.Tcam.added;
  Alcotest.(check int) "noop removed" 0 d.Tcam.removed

let test_sync_capacity_guard () =
  let t = Tcam.create ~capacity:2 in
  ignore (Tcam.sync t ~owner:1 ~prefixes:[ p "10.0.0.0/8" ]);
  ignore (Tcam.sync t ~owner:2 ~prefixes:[ p "11.0.0.0/8" ]);
  Alcotest.(check bool) "oversync raises" true
    (try
       ignore (Tcam.sync t ~owner:1 ~prefixes:[ p "10.0.0.0/8"; p "12.0.0.0/8" ]);
       false
     with Invalid_argument _ -> true)

let test_read_counters () =
  let t = Tcam.create ~capacity:4 in
  ignore (Tcam.sync t ~owner:1 ~prefixes:[ p "10.0.0.0/9"; p "10.128.0.0/9" ]);
  let agg =
    Aggregate.of_flows
      [ Flow.make ~addr:0x0A000001 ~volume:3.0; Flow.make ~addr:0x0A800001 ~volume:5.0 ]
  in
  let readings = Tcam.read t ~owner:1 agg in
  Alcotest.(check int) "two counters" 2 (List.length readings);
  List.iter
    (fun (q, v) ->
      if Prefix.equal q (p "10.0.0.0/9") then Alcotest.(check (float 1e-9)) "left" 3.0 v
      else Alcotest.(check (float 1e-9)) "right" 5.0 v)
    readings

let test_stats_tracking () =
  let t = Tcam.create ~capacity:8 in
  ignore (Tcam.sync t ~owner:1 ~prefixes:[ p "10.0.0.0/8"; p "11.0.0.0/8" ]);
  ignore (Tcam.read t ~owner:1 Aggregate.empty);
  ignore (Tcam.sync t ~owner:1 ~prefixes:[ p "11.0.0.0/8" ]);
  let s = Tcam.stats t in
  Alcotest.(check int) "installs" 2 s.Tcam.installs;
  Alcotest.(check int) "removals" 1 s.Tcam.removals;
  Alcotest.(check int) "fetches" 2 s.Tcam.fetches;
  Tcam.reset_stats t;
  let s = Tcam.stats t in
  Alcotest.(check int) "reset installs" 0 s.Tcam.installs;
  Alcotest.(check int) "reset fetches" 0 s.Tcam.fetches

let test_rules_sorted () =
  let t = Tcam.create ~capacity:8 in
  ignore (Tcam.sync t ~owner:1 ~prefixes:[ p "11.0.0.0/8"; p "10.0.0.0/8" ]);
  Alcotest.(check (list string)) "prefix order" [ "10.0.0.0/8"; "11.0.0.0/8" ]
    (List.map Prefix.to_string (Tcam.rules_of t ~owner:1))

(* ---- Switch ---- *)

let test_network () =
  let switches = Switch.network ~num_switches:4 ~capacity:128 in
  Alcotest.(check int) "four switches" 4 (Array.length switches);
  Array.iteri
    (fun i sw ->
      Alcotest.(check int) "id is index" i (Switch.id sw);
      Alcotest.(check int) "capacity" 128 (Switch.capacity sw))
    switches

(* ---- Delay model ---- *)

let test_delay_fetch_save () =
  let c = Delay_model.default in
  let fetch = Delay_model.fetch_ms c ~rules:512 ~switches:1 in
  let save = Delay_model.save_ms c ~installs:512 ~removals:0 ~switches:1 in
  (* Paper: saving 512 rules takes under 20 ms on software switches, and
     per-rule save costs more than per-rule fetch. *)
  Alcotest.(check bool) "512 saves under 20ms" true (save < 20.0);
  Alcotest.(check bool) "save/rule > fetch/rule" true (save > fetch)

let test_delay_fetch_dominates_incremental_save () =
  (* Fetch-all vs save-few (90% unchanged): fetch dominates, matching
     Section 6.5. *)
  let c = Delay_model.default in
  let fetch = Delay_model.fetch_ms c ~rules:1000 ~switches:8 in
  let save = Delay_model.save_ms c ~installs:100 ~removals:100 ~switches:8 in
  Alcotest.(check bool) "fetch dominates" true (fetch > save)

let test_delay_miss_fraction () =
  let c = Delay_model.default in
  Alcotest.(check (float 1e-9)) "no installs, no loss" 0.0
    (Delay_model.install_miss_fraction c ~epoch_ms:1000.0 ~installs:0 ~switches:0);
  let f = Delay_model.install_miss_fraction c ~epoch_ms:1000.0 ~installs:512 ~switches:1 in
  Alcotest.(check bool) "between 0 and 1" true (f > 0.0 && f < 1.0);
  let clamped = Delay_model.install_miss_fraction c ~epoch_ms:1.0 ~installs:100000 ~switches:1 in
  Alcotest.(check (float 1e-9)) "clamped at 1" 1.0 clamped

let test_delay_degenerate_batches () =
  let c = Delay_model.default in
  (* Zero switches: no batch, so no RTT — only the (empty) per-rule term. *)
  Alcotest.(check (float 1e-9)) "fetch of nothing is free" 0.0
    (Delay_model.fetch_ms c ~rules:0 ~switches:0);
  Alcotest.(check (float 1e-9)) "save of nothing is free" 0.0
    (Delay_model.save_ms c ~installs:0 ~removals:0 ~switches:0);
  (* Zero installs against a touched switch still pays the round trip. *)
  Alcotest.(check (float 1e-9)) "empty batch pays RTT only" c.Delay_model.rtt_ms
    (Delay_model.save_ms c ~installs:0 ~removals:0 ~switches:1);
  Alcotest.(check (float 1e-9)) "rules without switches pay no RTT"
    (c.Delay_model.fetch_per_rule_ms *. 100.0)
    (Delay_model.fetch_ms c ~rules:100 ~switches:0);
  (* Negative counts are treated as zero, not as negative time. *)
  Alcotest.(check (float 1e-9)) "negative rules clamp to 0" 0.0
    (Delay_model.fetch_ms c ~rules:(-5) ~switches:0)

let test_delay_miss_fraction_epoch_boundary () =
  let c = Delay_model.default in
  (* A non-positive epoch cannot lose a fraction of itself. *)
  Alcotest.(check (float 1e-9)) "zero epoch" 0.0
    (Delay_model.install_miss_fraction c ~epoch_ms:0.0 ~installs:512 ~switches:1);
  Alcotest.(check (float 1e-9)) "negative epoch" 0.0
    (Delay_model.install_miss_fraction c ~epoch_ms:(-10.0) ~installs:512 ~switches:1);
  (* An update that takes exactly one epoch misses exactly all of it. *)
  let installs = 10 in
  let exact = Delay_model.save_ms c ~installs ~removals:0 ~switches:1 in
  Alcotest.(check (float 1e-9)) "update = epoch misses all" 1.0
    (Delay_model.install_miss_fraction c ~epoch_ms:exact ~installs ~switches:1);
  (* Fraction scales linearly with the epoch length below the clamp. *)
  Alcotest.(check (float 1e-9)) "half the epoch, twice the miss"
    (2.0 *. Delay_model.install_miss_fraction c ~epoch_ms:2000.0 ~installs ~switches:1)
    (Delay_model.install_miss_fraction c ~epoch_ms:1000.0 ~installs ~switches:1)

let prop_sync_idempotent =
  QCheck.Test.make ~name:"sync to same set is a no-op" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 20) (int_bound 0xFFFF))
    (fun addrs ->
      let t = Tcam.create ~capacity:64 in
      let prefixes =
        List.sort_uniq Prefix.compare (List.map Prefix.of_address addrs)
        |> List.filteri (fun i _ -> i < 60)
      in
      ignore (Tcam.sync t ~owner:1 ~prefixes);
      let d = Tcam.sync t ~owner:1 ~prefixes in
      d.Tcam.added = 0 && d.Tcam.removed = 0 && Tcam.used_by t ~owner:1 = List.length prefixes)

let prop_used_equals_sum_of_owners =
  QCheck.Test.make ~name:"used = sum over owners" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 30) (pair (int_bound 3) (int_bound 0xFF)))
    (fun entries ->
      let t = Tcam.create ~capacity:256 in
      List.iter
        (fun (owner, addr) -> ignore (Tcam.install t ~owner (Prefix.of_address addr)))
        entries;
      let total =
        List.fold_left (fun acc owner -> acc + Tcam.used_by t ~owner) 0 [ 0; 1; 2; 3 ]
      in
      total = Tcam.used t)

let () =
  Alcotest.run "dream.switch"
    [
      ( "tcam",
        [
          Alcotest.test_case "create invalid" `Quick test_create_invalid;
          Alcotest.test_case "install and remove" `Quick test_install_remove;
          Alcotest.test_case "capacity enforced" `Quick test_capacity_enforced;
          Alcotest.test_case "same prefix, two owners" `Quick test_same_prefix_two_owners;
          Alcotest.test_case "remove owner" `Quick test_remove_owner;
          Alcotest.test_case "incremental sync" `Quick test_sync_incremental;
          Alcotest.test_case "sync capacity guard" `Quick test_sync_capacity_guard;
          Alcotest.test_case "read counters" `Quick test_read_counters;
          Alcotest.test_case "stats tracking" `Quick test_stats_tracking;
          Alcotest.test_case "rules sorted" `Quick test_rules_sorted;
          QCheck_alcotest.to_alcotest prop_sync_idempotent;
          QCheck_alcotest.to_alcotest prop_used_equals_sum_of_owners;
        ] );
      ("switch", [ Alcotest.test_case "network" `Quick test_network ]);
      ( "delay_model",
        [
          Alcotest.test_case "fetch and save costs" `Quick test_delay_fetch_save;
          Alcotest.test_case "fetch dominates incremental save" `Quick
            test_delay_fetch_dominates_incremental_save;
          Alcotest.test_case "miss fraction" `Quick test_delay_miss_fraction;
          Alcotest.test_case "degenerate batches" `Quick test_delay_degenerate_batches;
          Alcotest.test_case "miss fraction at epoch boundaries" `Quick
            test_delay_miss_fraction_epoch_boundary;
        ] );
    ]
