(* Tests for dream.chaos and its supporting pieces: scripted fault
   injections, NaN-safe numeric validation, journal close/flush behaviour,
   breaker state-machine properties (qcheck), schedule generation and
   serialization, the harness determinism/differential guarantees, and the
   canary-driven shrink-to-reproducer acceptance path. *)

module Fault_model = Dream_fault.Fault_model
module Journal = Dream_recovery.Journal
module Breaker = Dream_switch.Breaker
module Codec = Dream_util.Codec
module Config = Dream_core.Config
module Controller = Dream_core.Controller
module Allocator = Dream_alloc.Allocator
module Json = Dream_obs.Json
module Schedule = Dream_chaos.Schedule
module Oracle = Dream_chaos.Oracle
module Harness = Dream_chaos.Harness
module Shrink = Dream_chaos.Shrink
module Bank = Dream_chaos.Bank

let expect_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail (msg ^ ": expected Invalid_argument")

(* ---- Fault_model scripted injections ---- *)

let zero_model ?(num_switches = 4) () = Fault_model.create Fault_model.zero ~num_switches

let test_scripted_crash () =
  let fm = zero_model () in
  Fault_model.schedule_crash fm ~at:2 ~switch:3 ~downtime:2;
  let e1 = Fault_model.begin_epoch fm in
  Alcotest.(check (list int)) "epoch 1: nothing" [] e1.Fault_model.crashed;
  let e2 = Fault_model.begin_epoch fm in
  Alcotest.(check (list int)) "epoch 2: crash fires" [ 3 ] e2.Fault_model.crashed;
  Alcotest.(check bool) "down" true (Fault_model.is_down fm 3);
  let e3 = Fault_model.begin_epoch fm in
  Alcotest.(check (list int)) "epoch 3: still down" [] e3.Fault_model.recovered;
  Alcotest.(check bool) "down through downtime" true (Fault_model.is_down fm 3);
  let e4 = Fault_model.begin_epoch fm in
  Alcotest.(check (list int)) "epoch 4: recovers" [ 3 ] e4.Fault_model.recovered;
  Alcotest.(check bool) "back up" false (Fault_model.is_down fm 3);
  Alcotest.(check int) "consumed" 0 (Fault_model.pending_injections fm)

let test_scripted_crash_grace () =
  let fm = zero_model () in
  (* Two crashes aimed at the same switch; the second lands while the
     switch is still down and must be skipped, not extend the outage. *)
  Fault_model.schedule_crash fm ~at:2 ~switch:1 ~downtime:3;
  Fault_model.schedule_crash fm ~at:3 ~switch:1 ~downtime:5;
  for _ = 1 to 4 do ignore (Fault_model.begin_epoch fm) done;
  let e5 = Fault_model.begin_epoch fm in
  Alcotest.(check (list int)) "recovers on the first crash's clock" [ 1 ] e5.Fault_model.recovered;
  Alcotest.(check bool) "up at epoch 5" false (Fault_model.is_down fm 1)

let test_scripted_partition_heal () =
  let fm = zero_model () in
  Fault_model.schedule_partition fm ~at:2 ~group:1 ~span:4;
  Fault_model.schedule_heal fm ~at:4 ~group:1;
  ignore (Fault_model.begin_epoch fm);
  let e2 = Fault_model.begin_epoch fm in
  Alcotest.(check (list int)) "window opens" [ 1 ] e2.Fault_model.partitioned;
  (* 4 switches, zero-spec default groups: switch 1 is in group 1. *)
  Alcotest.(check bool) "switch 1 partitioned" true (Fault_model.is_partitioned fm 1);
  ignore (Fault_model.begin_epoch fm);
  let e4 = Fault_model.begin_epoch fm in
  Alcotest.(check (list int)) "heal closes the window early" [ 1 ] e4.Fault_model.healed;
  Alcotest.(check bool) "reachable again" false (Fault_model.is_partitioned fm 1);
  Alcotest.(check int) "partitioned count" 0 (Fault_model.partitioned_count fm)

let test_scripted_heal_without_partition () =
  let fm = zero_model () in
  Fault_model.schedule_heal fm ~at:1 ~group:0;
  let e1 = Fault_model.begin_epoch fm in
  Alcotest.(check (list int)) "spurious heal still surfaces" [ 0 ] e1.Fault_model.healed

let test_scripted_storm_and_ctrl_crash () =
  let fm = zero_model () in
  Fault_model.schedule_storm fm ~at:3 ~tasks:2;
  Fault_model.schedule_storm fm ~at:3 ~tasks:1;
  Fault_model.schedule_controller_crash fm ~at:3;
  ignore (Fault_model.begin_epoch fm);
  let e2 = Fault_model.begin_epoch fm in
  Alcotest.(check bool) "no crash yet" false e2.Fault_model.controller_crashed;
  let e3 = Fault_model.begin_epoch fm in
  Alcotest.(check int) "storms sum" 3 e3.Fault_model.storm_tasks;
  Alcotest.(check bool) "controller crash fires" true e3.Fault_model.controller_crashed

let test_scripted_noise_window () =
  let fm = zero_model () in
  Fault_model.schedule_noise fm ~at:2 ~span:2 ~timeout_rate:1.0 ~loss_rate:1.0
    ~perturb_stddev:0.0;
  ignore (Fault_model.begin_epoch fm);
  Alcotest.(check bool) "no noise yet" false (Fault_model.fetch_times_out fm 0);
  ignore (Fault_model.begin_epoch fm);
  Alcotest.(check bool) "timeouts forced" true (Fault_model.fetch_times_out fm 0);
  Alcotest.(check bool) "losses forced" true (Fault_model.lose_counter fm 0);
  ignore (Fault_model.begin_epoch fm);
  Alcotest.(check bool) "window still open" true (Fault_model.fetch_times_out fm 0);
  ignore (Fault_model.begin_epoch fm);
  Alcotest.(check bool) "window closed" false (Fault_model.fetch_times_out fm 0)

let test_injection_validation () =
  let fm = zero_model () in
  ignore (Fault_model.begin_epoch fm);
  expect_invalid "past epoch" (fun () -> Fault_model.schedule_crash fm ~at:1 ~switch:0 ~downtime:1);
  expect_invalid "unknown switch" (fun () ->
      Fault_model.schedule_crash fm ~at:5 ~switch:9 ~downtime:1);
  expect_invalid "zero downtime" (fun () ->
      Fault_model.schedule_crash fm ~at:5 ~switch:0 ~downtime:0);
  expect_invalid "zero span" (fun () -> Fault_model.schedule_partition fm ~at:5 ~group:0 ~span:0);
  expect_invalid "zero tasks" (fun () -> Fault_model.schedule_storm fm ~at:5 ~tasks:0)

let test_injection_roundtrip () =
  let stage fm =
    Fault_model.schedule_crash fm ~at:3 ~switch:2 ~downtime:2;
    Fault_model.schedule_controller_crash fm ~at:4;
    Fault_model.schedule_partition fm ~at:2 ~group:0 ~span:3;
    Fault_model.schedule_heal fm ~at:4 ~group:0;
    Fault_model.schedule_storm fm ~at:5 ~tasks:2;
    Fault_model.schedule_noise fm ~at:3 ~span:2 ~timeout_rate:0.5 ~loss_rate:0.25
      ~perturb_stddev:0.1
  in
  let a = zero_model () in
  stage a;
  let w = Codec.writer () in
  Fault_model.emit w a;
  let b = Fault_model.parse (Codec.reader_of_string (Codec.contents w)) in
  Alcotest.(check int) "pending survive the roundtrip" (Fault_model.pending_injections a)
    (Fault_model.pending_injections b);
  for epoch = 1 to 8 do
    let ea = Fault_model.begin_epoch a and eb = Fault_model.begin_epoch b in
    let tag name = Printf.sprintf "epoch %d: %s" epoch name in
    Alcotest.(check (list int)) (tag "crashed") ea.Fault_model.crashed eb.Fault_model.crashed;
    Alcotest.(check (list int)) (tag "recovered") ea.Fault_model.recovered eb.Fault_model.recovered;
    Alcotest.(check bool) (tag "ctrl") ea.Fault_model.controller_crashed
      eb.Fault_model.controller_crashed;
    Alcotest.(check (list int)) (tag "partitioned") ea.Fault_model.partitioned
      eb.Fault_model.partitioned;
    Alcotest.(check (list int)) (tag "healed") ea.Fault_model.healed eb.Fault_model.healed;
    Alcotest.(check int) (tag "storms") ea.Fault_model.storm_tasks eb.Fault_model.storm_tasks
  done

(* ---- NaN / out-of-range numeric validation ---- *)

let test_nan_rates_rejected () =
  expect_invalid "uniform nan" (fun () -> Fault_model.uniform Float.nan);
  expect_invalid "uniform negative" (fun () -> Fault_model.uniform (-0.1));
  expect_invalid "adversity nan" (fun () -> Fault_model.adversity Float.nan);
  expect_invalid "adversity above 1" (fun () -> Fault_model.adversity 1.5);
  expect_invalid "spec nan perturb" (fun () ->
      Fault_model.create
        { Fault_model.zero with Fault_model.perturb_stddev = Float.nan }
        ~num_switches:4);
  expect_invalid "spec nan decay" (fun () ->
      Fault_model.create
        { Fault_model.zero with Fault_model.stale_decay = Float.nan }
        ~num_switches:4)

let test_degraded_config_rejected () =
  let create degraded =
    Controller.create
      ~config:{ Config.default with Config.degraded = Some degraded }
      ~strategy:Allocator.Equal ~num_switches:2 ~capacity:64
  in
  expect_invalid "nan deadline" (fun () ->
      create { Config.default_degraded with Config.deadline_fraction = Float.nan });
  expect_invalid "zero deadline" (fun () ->
      create { Config.default_degraded with Config.deadline_fraction = 0.0 });
  expect_invalid "deadline above 1" (fun () ->
      create { Config.default_degraded with Config.deadline_fraction = 1.5 });
  expect_invalid "zero staleness cap" (fun () ->
      create { Config.default_degraded with Config.shed_max_staleness = 0 });
  ignore (create Config.default_degraded)

(* ---- Journal flush / close ---- *)

let entry epoch task_id = Journal.Purge { epoch; task_id }

let test_journal_close_idempotent () =
  let sink = Journal.memory () in
  Journal.append sink (entry 1 7);
  Journal.flush sink;
  Journal.close sink;
  Journal.close sink;
  expect_invalid "append after close" (fun () -> Journal.append sink (entry 2 8));
  expect_invalid "flush after close" (fun () -> Journal.flush sink);
  expect_invalid "truncate after close" (fun () -> Journal.truncate sink)

let test_journal_file_flush () =
  let path = Filename.temp_file "dream_chaos_journal" ".wal" in
  let sink = Journal.file path in
  Journal.append sink (entry 1 1);
  Journal.append sink (entry 2 2);
  Journal.flush sink;
  (* Read back while the sink is still open: flush must have pushed both
     entries to disk, parseable and in order. *)
  let read () =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (match Journal.entries_of_string (read ()) with
  | Ok entries -> Alcotest.(check int) "flushed while open" 2 (List.length entries)
  | Error msg -> Alcotest.fail ("flushed journal unparseable: " ^ msg));
  Journal.append sink (entry 3 3);
  Journal.close sink;
  (match Journal.entries_of_string (read ()) with
  | Ok entries -> Alcotest.(check int) "complete after close" 3 (List.length entries)
  | Error msg -> Alcotest.fail ("closed journal unparseable: " ^ msg));
  Sys.remove path

(* ---- Breaker properties (qcheck) ---- *)

type outcome_op = Success | Failure | Hint

(* An epoch is what the controller does each tick: one [begin_epoch], then
   some sequence of recorded outcomes and heal hints. *)
let gen_epochs =
  QCheck.Gen.(
    list_size (int_range 1 40)
      (list_size (int_bound 4) (map (function 0 -> Failure | 1 -> Success | _ -> Hint) (int_bound 2))))

let apply_outcome br = function
  | Success -> Breaker.record_success br
  | Failure -> Breaker.record_failure br
  | Hint -> Breaker.hint_probe br

let prop_transitions_legal =
  QCheck.Test.make ~name:"observed epoch transitions are legal" ~count:500
    (QCheck.make gen_epochs) (fun epochs ->
      let br = Breaker.create Breaker.default_config in
      let last = ref (Breaker.state br) in
      List.for_all
        (fun outcomes ->
          Breaker.begin_epoch br;
          List.iter (apply_outcome br) outcomes;
          let now = Breaker.state br in
          let ok = Breaker.legal_transition ~from:!last ~into:now in
          last := now;
          ok)
        epochs)

let prop_counters_match_transitions =
  QCheck.Test.make ~name:"opens/probes count transitions into Open/Half_open" ~count:500
    (QCheck.make gen_epochs) (fun epochs ->
      let br = Breaker.create Breaker.default_config in
      let opens = ref 0 and probes = ref 0 in
      let last = ref (Breaker.state br) in
      let observe () =
        let now = Breaker.state br in
        (match (!last, now) with
        | (Breaker.Closed | Breaker.Half_open), Breaker.Open -> incr opens
        | Breaker.Open, Breaker.Half_open -> incr probes
        | _, _ -> ());
        last := now
      in
      List.iter
        (fun outcomes ->
          Breaker.begin_epoch br;
          observe ();
          List.iter (fun op -> apply_outcome br op; observe ()) outcomes)
        epochs;
      !opens = Breaker.opens br && !probes = Breaker.probes br)

let prop_probe_budget_never_lost =
  QCheck.Test.make ~name:"an Open breaker always probes within its cooldown" ~count:500
    (QCheck.make gen_epochs) (fun epochs ->
      let br = Breaker.create Breaker.default_config in
      List.iter
        (fun outcomes ->
          Breaker.begin_epoch br;
          List.iter (apply_outcome br) outcomes)
        epochs;
      match Breaker.state br with
      | Breaker.Closed | Breaker.Half_open -> true
      | Breaker.Open ->
        let cooldown = (Breaker.config br).Breaker.cooldown_epochs in
        let rec probe_within n =
          if n = 0 then false
          else begin
            Breaker.begin_epoch br;
            match Breaker.state br with
            | Breaker.Half_open -> true
            | Breaker.Open -> probe_within (n - 1)
            | Breaker.Closed -> false
          end
        in
        probe_within (cooldown + 1))

let prop_emit_parse_equivalent =
  QCheck.Test.make ~name:"emit/parse preserves breaker behaviour" ~count:300
    (QCheck.make QCheck.Gen.(pair gen_epochs gen_epochs)) (fun (prefix, suffix) ->
      let br = Breaker.create Breaker.default_config in
      List.iter
        (fun outcomes ->
          Breaker.begin_epoch br;
          List.iter (apply_outcome br) outcomes)
        prefix;
      let w = Codec.writer () in
      Breaker.emit w br;
      let copy = Breaker.parse (Codec.reader_of_string (Codec.contents w)) in
      Breaker.state copy = Breaker.state br
      && Breaker.opens copy = Breaker.opens br
      && Breaker.probes copy = Breaker.probes br
      && List.for_all
           (fun outcomes ->
             Breaker.begin_epoch br;
             Breaker.begin_epoch copy;
             List.iter (fun op -> apply_outcome br op; apply_outcome copy op) outcomes;
             Breaker.state copy = Breaker.state br)
           suffix)

(* ---- Schedules ---- *)

let gen_args = ("seed", 1234)

let generate seed =
  Schedule.generate ~seed ~num_switches:Harness.num_switches ~groups:Harness.groups ~horizon:48
    ~events:12

let schedule_string s = Json.to_string (Schedule.to_json s)

let test_schedule_deterministic () =
  let _, seed = gen_args in
  Alcotest.(check string) "same seed, same schedule" (schedule_string (generate seed))
    (schedule_string (generate seed));
  Alcotest.(check bool) "different seed, different schedule" false
    (String.equal (schedule_string (generate seed)) (schedule_string (generate (seed + 1))))

let test_schedule_json_roundtrip () =
  let s = generate 99 in
  match Schedule.of_json (Schedule.to_json s) with
  | Ok s' -> Alcotest.(check string) "roundtrip" (schedule_string s) (schedule_string s')
  | Error msg -> Alcotest.fail ("of_json failed: " ^ msg)

let test_schedule_validate () =
  let bad =
    { Schedule.seed = 1; horizon = 48;
      events = [ Schedule.Switch_crash { at = 3; switch = 99; downtime = 1 } ] }
  in
  (match Schedule.validate ~num_switches:Harness.num_switches ~groups:Harness.groups bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range switch accepted");
  match Schedule.validate ~num_switches:Harness.num_switches ~groups:Harness.groups (generate 5) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("generated schedule rejected: " ^ msg)

let test_shrink_event_strictly_smaller () =
  let shrinks_of e = Schedule.shrink_event e in
  List.iter
    (fun e ->
      List.iter
        (fun v -> Alcotest.(check int) "same epoch" (Schedule.at_of e) (Schedule.at_of v))
        (shrinks_of e))
    (generate 7).Schedule.events;
  Alcotest.(check (list int)) "atomic events don't shrink" []
    (List.map Schedule.at_of (shrinks_of (Schedule.Controller_crash { at = 4 })))

(* ---- Harness: determinism and the differential oracle ---- *)

let test_harness_differential () =
  let empty = { Schedule.seed = 42; horizon = Harness.default_horizon; events = [] } in
  let r = Harness.run empty in
  Alcotest.(check int) "no violations" 0 (List.length r.Harness.violations);
  Alcotest.(check string) "empty schedule is byte-identical to the seed run"
    (Harness.reference_digest ~seed:42 ~horizon:Harness.default_horizon)
    r.Harness.digest

let test_harness_deterministic () =
  let sched = generate 4242 in
  let a = Harness.run sched and b = Harness.run sched in
  Alcotest.(check string) "same digest" a.Harness.digest b.Harness.digest;
  Alcotest.(check int) "same violation count" (List.length a.Harness.violations)
    (List.length b.Harness.violations);
  Alcotest.(check int) "no violations on main" 0 (List.length a.Harness.violations)

let test_small_bank_clean () =
  let o = Bank.run ~schedules:3 ~seed:42 () in
  Alcotest.(check int) "no violations" 0 o.Bank.violations;
  Alcotest.(check bool) "differential holds" true o.Bank.differential_ok;
  Alcotest.(check int) "no failures" 0 (List.length o.Bank.failures)

(* ---- The canary: plant the bug, catch it, shrink it, replay it ---- *)

let canary_seed = 364128774783586872

let test_canary_shrinks_to_reproducer () =
  let sched =
    Schedule.generate ~seed:canary_seed ~num_switches:Harness.num_switches ~groups:Harness.groups
      ~horizon:Harness.default_horizon ~events:200
  in
  Alcotest.(check int) "200-event schedule" 200 (List.length sched.Schedule.events);
  let r = Harness.run ~canary:true sched in
  Alcotest.(check bool) "canary fired" true r.Harness.canary_fired;
  Alcotest.(check bool) "oracles caught it" true (Harness.failed r);
  let fails s = Harness.failed (Harness.run ~canary:true s) in
  let minimized, stats = Shrink.minimize ~fails sched in
  Alcotest.(check bool)
    (Printf.sprintf "shrunk to <= 5 events (got %d in %d runs)" stats.Shrink.final_events
       stats.Shrink.runs)
    true
    (stats.Shrink.final_events <= 5);
  (* The minimized schedule must still be a replayable reproducer, and it
     must be the canary (not some organic failure) that it reproduces. *)
  let replay = Harness.run ~canary:true minimized in
  Alcotest.(check bool) "replay still fails" true (Harness.failed replay);
  Alcotest.(check bool) "replay without the canary passes" false
    (Harness.failed (Harness.run ~canary:false minimized));
  (* Reproducer file roundtrip. *)
  let failure =
    match replay.Harness.violations with
    | first :: _ ->
      { Bank.f_schedule = sched; f_canary = true; f_first = first; f_minimized = minimized;
        f_stats = stats }
    | [] -> Alcotest.fail "unreachable: replay failed with no violations"
  in
  match Bank.reproducer_of_string (Bank.reproducer_to_string failure) with
  | Ok (canary, sched') ->
    Alcotest.(check bool) "canary flag survives" true canary;
    Alcotest.(check string) "schedule survives" (schedule_string minimized)
      (schedule_string sched')
  | Error msg -> Alcotest.fail ("reproducer roundtrip failed: " ^ msg)

let () =
  Alcotest.run "dream.chaos"
    [
      ( "injections",
        [
          Alcotest.test_case "scripted crash" `Quick test_scripted_crash;
          Alcotest.test_case "crash grace" `Quick test_scripted_crash_grace;
          Alcotest.test_case "partition + heal" `Quick test_scripted_partition_heal;
          Alcotest.test_case "spurious heal" `Quick test_scripted_heal_without_partition;
          Alcotest.test_case "storm + controller crash" `Quick test_scripted_storm_and_ctrl_crash;
          Alcotest.test_case "noise window" `Quick test_scripted_noise_window;
          Alcotest.test_case "validation" `Quick test_injection_validation;
          Alcotest.test_case "emit/parse roundtrip" `Quick test_injection_roundtrip;
        ] );
      ( "validation",
        [
          Alcotest.test_case "NaN and negative rates" `Quick test_nan_rates_rejected;
          Alcotest.test_case "degraded config" `Quick test_degraded_config_rejected;
        ] );
      ( "journal",
        [
          Alcotest.test_case "close is idempotent and final" `Quick test_journal_close_idempotent;
          Alcotest.test_case "file sink flushes" `Quick test_journal_file_flush;
        ] );
      ( "breaker-properties",
        [
          QCheck_alcotest.to_alcotest prop_transitions_legal;
          QCheck_alcotest.to_alcotest prop_counters_match_transitions;
          QCheck_alcotest.to_alcotest prop_probe_budget_never_lost;
          QCheck_alcotest.to_alcotest prop_emit_parse_equivalent;
        ] );
      ( "schedules",
        [
          Alcotest.test_case "deterministic generation" `Quick test_schedule_deterministic;
          Alcotest.test_case "json roundtrip" `Quick test_schedule_json_roundtrip;
          Alcotest.test_case "validate bounds" `Quick test_schedule_validate;
          Alcotest.test_case "shrink variants" `Quick test_shrink_event_strictly_smaller;
        ] );
      ( "harness",
        [
          Alcotest.test_case "differential vs seed run" `Quick test_harness_differential;
          Alcotest.test_case "deterministic runs" `Quick test_harness_deterministic;
          Alcotest.test_case "small bank is clean" `Quick test_small_bank_clean;
        ] );
      ( "canary",
        [
          Alcotest.test_case "shrink to <= 5 events" `Slow test_canary_shrinks_to_reproducer;
        ] );
    ]
