(* Shared test fixtures: the 4-bit worked example (a Figure-5-style trie
   with hand-checked HH/HHH/CD ground truth) and a manual task-driving
   harness used by the estimator and task tests. *)

module Rng = Dream_util.Rng
module Prefix = Dream_prefix.Prefix
module Switch_id = Dream_traffic.Switch_id
module Topology = Dream_traffic.Topology
module Flow = Dream_traffic.Flow
module Aggregate = Dream_traffic.Aggregate
module Epoch_data = Dream_traffic.Epoch_data
module Task_spec = Dream_tasks.Task_spec
module Task = Dream_tasks.Task
module Monitor = Dream_tasks.Monitor
module Score = Dream_tasks.Score

(* A 4-bit universe: filter 10.0.0.0/28, leaves at /32, threshold 10.
   Two switches split it at /29 (0*** vs 1***, in some switch order). *)
let filter = Prefix.of_string "10.0.0.0/28"

let leaf bits = Prefix.make ~bits:(Prefix.bits filter lor bits) ~length:32

let sub bits length = Prefix.make ~bits:(Prefix.bits filter lor (bits lsl (32 - length))) ~length

let topology () = Topology.create (Rng.create 1) ~filter ~num_switches:2 ~switches_per_task:2

let spec ?(kind = Task_spec.Heavy_hitter) ?(threshold = 10.0) () =
  Task_spec.make ~kind ~filter ~leaf_length:32 ~threshold ()

(* Example volumes:
     0000:12  0001:2  0100:6  0101:7  0111:11  1010:3  1100:4  1111:1
   True HHs (>10):   {0000, 0111}
   True HHHs:        {0000, 010*, 0111}
     - 010* because 6+7=13 > 10 with neither child over 10
     - 011* residual 0, 00** residual 2, 01** residual 0, 0*** residual 2,
       1*** residual 8, root residual 10 (not > 10). *)
let example_volumes =
  [
    (0b0000, 12.0);
    (0b0001, 2.0);
    (0b0100, 6.0);
    (0b0101, 7.0);
    (0b0111, 11.0);
    (0b1010, 3.0);
    (0b1100, 4.0);
    (0b1111, 1.0);
  ]

let true_hh_leaves = [ 0b0000; 0b0111 ]

let true_hhh_prefixes () = [ leaf 0b0000; sub 0b010 31; leaf 0b0111 ]

let flows_of volumes =
  List.map (fun (bits, volume) -> Flow.make ~addr:(Prefix.bits (leaf bits)) ~volume) volumes

let epoch_data ?(volumes = example_volumes) ~epoch () =
  let topo = topology () in
  Epoch_data.of_flows ~epoch
    (List.filter_map
       (fun (f : Flow.t) ->
         match Topology.switch_of_address topo f.Flow.addr with
         | Some sw -> Some (sw, [ f ])
         | None -> None)
       (flows_of volumes))

let allocations_of switches n =
  Switch_id.Set.fold (fun sw acc -> Switch_id.Map.add sw n acc) switches Switch_id.Map.empty

(* Feed one epoch of data through a task object (fetch, report, estimate,
   configure), returning the report and the raw estimate. *)
let drive_task task ~data ~allocations ~epoch =
  let readings =
    Switch_id.Set.fold
      (fun sw acc ->
        let agg = Epoch_data.switch_view data sw in
        (sw, List.map (fun q -> (q, Aggregate.volume agg q)) (Task.desired_rules task sw)) :: acc)
      (Task.switches task) []
  in
  Task.ingest_counters task readings;
  let report = Task.make_report task ~epoch in
  let estimate = Task.estimate_accuracy task in
  Task.configure task ~allocations;
  (report, estimate)

(* Run the example for [epochs] epochs with [per_switch] counters. *)
let converged_task ?kind ?threshold ~per_switch ~epochs () =
  let task = Task.create ~id:0 ~spec:(spec ?kind ?threshold ()) ~topology:(topology ()) () in
  let allocations = allocations_of (Task.switches task) per_switch in
  let last = ref None in
  for epoch = 0 to epochs - 1 do
    let data = epoch_data ~epoch () in
    last := Some (drive_task task ~data ~allocations ~epoch)
  done;
  (task, !last)
