(* dream-sim: run DREAM experiments from the command line.

     dune exec bin/dream_sim.exe -- run --capacity 1024 --strategy dream
     dune exec bin/dream_sim.exe -- run --kind HH --tasks 32 --fault-rate 0.1
     dune exec bin/dream_sim.exe -- fault-sweep --rates 0.0,0.05,0.2
     dune exec bin/dream_sim.exe -- degraded-mode --levels 0.0,0.5,1.0 --telemetry tel/
     dune exec bin/dream_sim.exe -- checkpoint --out run.ckpt --at 100
     dune exec bin/dream_sim.exe -- restore-run --from run.ckpt --epochs 100
     dune exec bin/dream_sim.exe -- crash-recovery --rates 0.0,0.02,0.05

   The bare form (no subcommand) still runs a single experiment, so the
   pre-subcommand invocations keep working.  Every numeric option is
   validated up front; bad values produce a clear message and a non-zero
   exit code instead of a crash deep inside the simulator. *)

module Scenario = Dream_workload.Scenario
module Arrival = Dream_workload.Arrival
module Controller = Dream_core.Controller
module Experiment = Dream_sim.Experiment
module Fault_sweep = Dream_sim.Fault_sweep
module Crash_recovery = Dream_sim.Crash_recovery
module Degraded_mode = Dream_sim.Degraded_mode
module Config = Dream_core.Config
module Metrics = Dream_core.Metrics
module Task_spec = Dream_tasks.Task_spec
module Fault_model = Dream_fault.Fault_model
module Journal = Dream_recovery.Journal
module Allocator = Dream_alloc.Allocator
module Stats = Dream_util.Stats
module Telemetry = Dream_obs.Telemetry
module Inspect = Dream_obs.Inspect
module Bank = Dream_chaos.Bank
module Schedule = Dream_chaos.Schedule
module Harness = Dream_chaos.Harness
module Oracle = Dream_chaos.Oracle
module Shrink = Dream_chaos.Shrink
module Chaos_coverage = Dream_sim.Chaos_coverage

let ( let* ) = Result.bind
let check cond msg = if cond then Ok () else Error msg
let sp = Printf.sprintf

let scenario_of capacity num_switches switches_per_task tasks window duration epochs threshold
    bound kind seed =
  let* () = check (capacity > 0) (sp "--capacity must be positive (got %d)" capacity) in
  let* () = check (num_switches > 0) (sp "--switches must be positive (got %d)" num_switches) in
  let* () =
    check (switches_per_task > 0)
      (sp "--switches-per-task must be positive (got %d)" switches_per_task)
  in
  let* () = check (tasks > 0) (sp "--tasks must be positive (got %d)" tasks) in
  let* () = check (window > 0) (sp "--window must be a positive epoch count (got %d)" window) in
  let* () =
    check (duration > 0) (sp "--duration must be a positive epoch count (got %d)" duration)
  in
  let* () = check (epochs > 0) (sp "--epochs must be a positive epoch count (got %d)" epochs) in
  let* () =
    check
      (Float.is_finite threshold && threshold > 0.0)
      (sp "--threshold must be a positive finite number of Mb (got %g)" threshold)
  in
  let* () =
    check (bound >= 0.0 && bound <= 1.0) (sp "--bound must be in [0, 1] (got %g)" bound)
  in
  let scenario =
    {
      Scenario.default with
      Scenario.capacity;
      num_switches;
      switches_per_task;
      num_tasks = tasks;
      arrival_window = window;
      mean_duration = duration;
      total_epochs = epochs;
      threshold;
      accuracy_bound = bound;
      seed;
    }
  in
  match String.lowercase_ascii kind with
  | "hh" -> Ok (Scenario.with_kind scenario Task_spec.Heavy_hitter)
  | "hhh" -> Ok (Scenario.with_kind scenario Task_spec.Hierarchical_heavy_hitter)
  | "cd" -> Ok (Scenario.with_kind scenario Task_spec.Change_detection)
  | "combined" | "all" -> Ok scenario
  | other -> Error (sp "unknown kind %S (HH | HHH | CD | combined)" other)

let strategy_of strategy fixed_k =
  match String.lowercase_ascii strategy with
  | "dream" -> Ok Experiment.dream_strategy
  | "equal" -> Ok Allocator.Equal
  | "fixed" ->
    let* () = check (fixed_k > 0) (sp "--fixed-k must be positive (got %d)" fixed_k) in
    Ok (Allocator.Fixed fixed_k)
  | other -> Error (sp "unknown strategy %S (dream | equal | fixed)" other)

let rate_in_range ~flag rate =
  let* () =
    check (Float.is_finite rate) (sp "%s must be a finite number (got %s)" flag (string_of_float rate))
  in
  check (rate >= 0.0 && rate <= 1.0) (sp "%s must be in [0, 1] (got %g)" flag rate)

(* A rate list is only meaningful when every value is a finite number in
   [0, 1] and no value repeats (a duplicate would silently double-weight
   one sweep point). *)
let rates_in_range ~flag rates =
  let* () =
    List.fold_left (fun acc r -> Result.bind acc (fun () -> rate_in_range ~flag r)) (Ok ()) rates
  in
  let rec first_dup = function
    | [] -> Ok ()
    | r :: rest ->
      if List.exists (fun r' -> Float.equal r' r) rest then
        Error (sp "%s contains duplicate value %g" flag r)
      else first_dup rest
  in
  first_dup rates

(* Validate --telemetry DIR before the run spends any time: the path must
   be (or become) a writable directory that does not already hold a bundle,
   so a long experiment can never fail at export time. *)
let telemetry_dir_ready dir =
  let exists = Sys.file_exists dir in
  let* () =
    check
      ((not exists) || Sys.is_directory dir)
      (sp "--telemetry: %s exists and is not a directory" dir)
  in
  let* () =
    if exists then begin
      let collisions =
        List.filter
          (fun f -> Sys.file_exists (Filename.concat dir f))
          [ "trace.jsonl"; "metrics.prom"; "profile.json"; "tasks.csv"; "switches.csv" ]
      in
      check (collisions = [])
        (sp "--telemetry: %s already holds a bundle (%s); pick a fresh directory" dir
           (String.concat ", " collisions))
    end
    else begin
      try Ok (Sys.mkdir dir 0o755)
      with Sys_error msg -> Error (sp "--telemetry: cannot create %s: %s" dir msg)
    end
  in
  let probe = Filename.concat dir ".write-probe" in
  try
    let oc = open_out probe in
    close_out oc;
    Sys.remove probe;
    Ok ()
  with Sys_error msg -> Error (sp "--telemetry: %s is not writable: %s" dir msg)

let print_summary name (s : Metrics.summary) =
  Format.printf "@.%s results:@." name;
  Format.printf "  satisfaction  mean %.1f%%  5th-pct %.1f%%@." s.Metrics.mean_satisfaction
    s.Metrics.p5_satisfaction;
  Format.printf "  tasks         submitted %d  admitted %d  completed %d@." s.Metrics.submitted
    s.Metrics.admitted s.Metrics.completed;
  Format.printf "  rejection     %.1f%%   drop %.1f%%@." s.Metrics.rejection_pct s.Metrics.drop_pct;
  if s.Metrics.robustness <> Metrics.no_faults then
    Format.printf "  robustness    %a@." Metrics.pp_robustness s.Metrics.robustness

let backend_of = function
  | "flat" -> Ok Dream_traffic.Aggregate.Flat
  | "reference" -> Ok Dream_traffic.Aggregate.Reference
  | s -> Error (sp "unknown store backend %S (expected flat or reference)" s)

let run capacity num_switches switches_per_task tasks window duration epochs threshold bound kind
    strategy fixed_k seed fault_rate fault_seed backend telemetry_dir profiling verbose =
  let* scenario =
    scenario_of capacity num_switches switches_per_task tasks window duration epochs threshold
      bound kind seed
  in
  let* strategy = strategy_of strategy fixed_k in
  let* () = rate_in_range ~flag:"--fault-rate" fault_rate in
  let* backend = backend_of backend in
  let* () =
    check ((not profiling) || telemetry_dir <> None) "--profile requires --telemetry DIR"
  in
  let* telemetry =
    match telemetry_dir with
    | None -> Ok None
    | Some dir ->
      let* () = telemetry_dir_ready dir in
      let profile = if profiling then Some (Dream_obs.Profile.create ()) else None in
      Ok (Some (Telemetry.create ?profile ()))
  in
  let config =
    let base =
      if fault_rate <= 0.0 then Config.default
      else
        { Config.default with
          Config.faults = Some (Fault_model.uniform ~seed:fault_seed fault_rate)
        }
    in
    { base with Config.telemetry; store_backend = backend }
  in
  Format.printf "scenario: %a@." Scenario.pp scenario;
  Format.printf "expected concurrency: %.1f tasks@." (Scenario.concurrency scenario);
  if fault_rate > 0.0 then
    Format.printf "fault injection: uniform rate %.3f (seed %d)@." fault_rate fault_seed;
  let result = Experiment.run ~config scenario strategy in
  print_summary result.Experiment.strategy result.Experiment.summary;
  Format.printf "  switch rules  installed %d  fetched %d@." result.Experiment.rules_installed
    result.Experiment.rules_fetched;
  let* () =
    match (telemetry, telemetry_dir) with
    | Some bundle, Some dir ->
      let* () = Telemetry.write_dir bundle ~dir in
      Format.printf "  telemetry     %d trace items -> %s@."
        (Dream_obs.Trace.length (Telemetry.trace bundle))
        dir;
      (match Telemetry.profile bundle with
      | Some p ->
        let module Profile = Dream_obs.Profile in
        (match Profile.find p "epoch" with
        | Some st ->
          Format.printf "  profile       %d epochs, %.1f ms wall, %.0f minor words allocated@."
            st.Profile.count st.Profile.wall_ms
            st.Profile.gc.Dream_obs.Gc_stats.minor_words
        | None -> ())
      | None -> ());
      Ok ()
    | _ -> Ok ()
  in
  if verbose then begin
    Format.printf "@.per-task records:@.";
    List.iter
      (fun (r : Metrics.record) ->
        Format.printf "  task %3d %-4s %-9s arrived %4d  active %4d  satisfaction %5.1f%%@."
          r.Metrics.task_id
          (Task_spec.kind_to_string r.Metrics.kind)
          (match r.Metrics.outcome with
          | Metrics.Completed -> "completed"
          | Metrics.Dropped -> "dropped"
          | Metrics.Rejected -> "rejected")
          r.Metrics.arrived_at r.Metrics.active_epochs
          (r.Metrics.satisfaction *. 100.0))
      result.Experiment.records
  end;
  Ok ()

let fault_sweep capacity num_switches switches_per_task tasks window duration epochs threshold
    bound kind strategy fixed_k seed rates fault_seeds =
  let* scenario =
    scenario_of capacity num_switches switches_per_task tasks window duration epochs threshold
      bound kind seed
  in
  let* strategy = strategy_of strategy fixed_k in
  let rates = if rates = [] then Fault_sweep.default_rates else rates in
  let* () = rates_in_range ~flag:"--rates" rates in
  let seeds = if fault_seeds = [] then Fault_sweep.default_seeds else fault_seeds in
  Format.printf "scenario: %a@." Scenario.pp scenario;
  Format.printf "strategy: %s   fault seeds: %s@.@."
    (Allocator.strategy_name strategy)
    (String.concat "," (List.map string_of_int seeds));
  let aggregates = Fault_sweep.sweep_seeds ~seeds ~rates scenario strategy in
  Fault_sweep.print_aggregates aggregates;
  Ok ()

(* Drive a controller through [epochs] epochs of a scenario's arrival
   schedule, journaling, then seal a checkpoint. *)
let checkpoint capacity num_switches switches_per_task tasks window duration epochs threshold
    bound kind strategy fixed_k seed fault_rate fault_seed at out journal_path =
  let* scenario =
    scenario_of capacity num_switches switches_per_task tasks window duration epochs threshold
      bound kind seed
  in
  let* strategy = strategy_of strategy fixed_k in
  let* () = rate_in_range ~flag:"--fault-rate" fault_rate in
  let* () =
    check (at > 0 && at <= scenario.Scenario.total_epochs)
      (sp "--at must be a positive epoch count within --epochs (got %d, epochs %d)" at
         scenario.Scenario.total_epochs)
  in
  let config =
    if fault_rate <= 0.0 then Config.default
    else
      { Config.default with Config.faults = Some (Fault_model.uniform ~seed:fault_seed fault_rate) }
  in
  let controller =
    Controller.create ~config ~strategy ~num_switches:scenario.Scenario.num_switches
      ~capacity:scenario.Scenario.capacity
  in
  let sink =
    match journal_path with Some path -> Journal.file path | None -> Journal.memory ()
  in
  Controller.set_journal controller (Some sink);
  let pending = ref (Arrival.schedule scenario) in
  for epoch = 0 to at - 1 do
    let due, rest =
      List.partition (fun (s : Arrival.submission) -> s.Arrival.arrival <= epoch) !pending
    in
    pending := rest;
    List.iter
      (fun (s : Arrival.submission) ->
        ignore
          (Controller.submit controller ~spec:s.Arrival.spec ~topology:s.Arrival.topology
             ~source:(Dream_traffic.Source.of_generator s.Arrival.generator)
             ~duration:s.Arrival.duration))
      due;
    Controller.tick controller
  done;
  let doc = Controller.snapshot controller in
  Journal.close sink;
  let* () =
    try
      let oc = open_out out in
      output_string oc doc;
      close_out oc;
      Ok ()
    with Sys_error msg -> Error (sp "cannot write checkpoint %s: %s" out msg)
  in
  Format.printf "checkpoint: %d epochs, %d active tasks, %d bytes -> %s@." at
    (Controller.active_tasks controller)
    (String.length doc) out;
  (match journal_path with
  | Some path -> Format.printf "journal: %d entries -> %s@." (Journal.length sink) path
  | None -> ());
  Ok ()

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s
  with Sys_error msg -> Error (sp "cannot read checkpoint %s: %s" path msg)

let restore_run from epochs verbose =
  let* () = check (epochs >= 0) (sp "--epochs must not be negative (got %d)" epochs) in
  let* doc = read_file from in
  let* controller = Result.map_error (sp "invalid checkpoint %s: %s" from) (Controller.restore doc) in
  Format.printf "restored %s: epoch %d, %d switches, %d active tasks@." from
    (Controller.epoch controller) (Controller.num_switches controller)
    (Controller.active_tasks controller);
  Controller.run controller ~epochs;
  Controller.finalize controller;
  print_summary "resumed run" (Controller.summary controller);
  if verbose then begin
    Format.printf "@.per-task records:@.";
    List.iter
      (fun (r : Metrics.record) ->
        Format.printf "  task %3d arrived %4d  active %4d  satisfaction %5.1f%%@." r.Metrics.task_id
          r.Metrics.arrived_at r.Metrics.active_epochs
          (r.Metrics.satisfaction *. 100.0))
      (Controller.records controller)
  end;
  Ok ()

let crash_recovery capacity num_switches switches_per_task tasks window duration epochs threshold
    bound kind strategy fixed_k seed rates fault_seeds checkpoint_interval =
  let* scenario =
    scenario_of capacity num_switches switches_per_task tasks window duration epochs threshold
      bound kind seed
  in
  let* strategy = strategy_of strategy fixed_k in
  let rates = if rates = [] then Crash_recovery.default_rates else rates in
  let* () = rates_in_range ~flag:"--rates" rates in
  let* () =
    check (checkpoint_interval > 0)
      (sp "--checkpoint-interval must be a positive epoch count (got %d)" checkpoint_interval)
  in
  let seeds = if fault_seeds = [] then Crash_recovery.default_seeds else fault_seeds in
  Format.printf "scenario: %a@." Scenario.pp scenario;
  Format.printf "strategy: %s   fault seeds: %s   checkpoint every %d epochs@.@."
    (Allocator.strategy_name strategy)
    (String.concat "," (List.map string_of_int seeds))
    checkpoint_interval;
  let points =
    Crash_recovery.sweep ~checkpoint_interval ~seeds ~rates scenario strategy
  in
  Crash_recovery.print_points points;
  Ok ()

let degraded_mode capacity num_switches switches_per_task tasks window duration epochs threshold
    bound kind strategy fixed_k seed levels fault_seed deadline_fraction telemetry_dir =
  let* scenario =
    scenario_of capacity num_switches switches_per_task tasks window duration epochs threshold
      bound kind seed
  in
  let* strategy = strategy_of strategy fixed_k in
  let levels = if levels = [] then Degraded_mode.default_levels else levels in
  let* () = rates_in_range ~flag:"--levels" levels in
  let* () =
    check
      (Float.is_finite deadline_fraction && deadline_fraction > 0.0 && deadline_fraction <= 1.0)
      (sp "--deadline-fraction must be in (0, 1] (got %g)" deadline_fraction)
  in
  let* telemetry =
    match telemetry_dir with
    | None -> Ok None
    | Some dir ->
      let* () = telemetry_dir_ready dir in
      Ok (Some (Telemetry.create ()))
  in
  let degraded = { Config.default_degraded with Config.deadline_fraction } in
  Format.printf "scenario: %a@." Scenario.pp scenario;
  Format.printf "strategy: %s   adversity levels: %s   deadline %.0f%% of epoch@.@."
    (Allocator.strategy_name strategy)
    (String.concat "," (List.map (Printf.sprintf "%g") levels))
    (deadline_fraction *. 100.0);
  let points =
    List.concat_map
      (fun level ->
        [
          Degraded_mode.run_point ~fault_seed ~degraded:(Some degraded) scenario strategy level;
          Degraded_mode.run_point ~fault_seed ~degraded:None scenario strategy level;
        ])
      levels
  in
  Degraded_mode.print_points points;
  match (telemetry, telemetry_dir) with
  | Some bundle, Some dir ->
    (* One more degraded run, at the highest level, with the bundle
       attached — so the exported artifact holds the breaker transitions,
       shed events and staleness histogram of the worst case swept. *)
    let top = List.fold_left Float.max 0.0 levels in
    ignore
      (Degraded_mode.run_point ~telemetry:bundle ~fault_seed ~degraded:(Some degraded) scenario
         strategy top);
    let* () = Telemetry.write_dir bundle ~dir in
    Format.printf "@.telemetry (level %g): %d trace items -> %s@." top
      (Dream_obs.Trace.length (Telemetry.trace bundle))
      dir;
    Ok ()
  | _ -> Ok ()

open Cmdliner

let capacity = Arg.(value & opt int 1024 & info [ "capacity"; "c" ] ~doc:"TCAM entries per switch.")
let num_switches = Arg.(value & opt int 8 & info [ "switches" ] ~doc:"Number of switches.")

let switches_per_task =
  Arg.(value & opt int 8 & info [ "switches-per-task" ] ~doc:"Switches seeing each task (power of two).")

let tasks = Arg.(value & opt int 88 & info [ "tasks"; "n" ] ~doc:"Number of submitted tasks.")
let window = Arg.(value & opt int 280 & info [ "window" ] ~doc:"Arrival window in epochs.")
let duration = Arg.(value & opt int 140 & info [ "duration" ] ~doc:"Mean task duration in epochs.")
let epochs = Arg.(value & opt int 560 & info [ "epochs" ] ~doc:"Total simulated epochs.")
let threshold = Arg.(value & opt float 8.0 & info [ "threshold" ] ~doc:"Task threshold in Mb.")
let bound = Arg.(value & opt float 0.8 & info [ "bound" ] ~doc:"Accuracy bound in [0,1].")

let kind =
  Arg.(value & opt string "combined" & info [ "kind"; "k" ] ~doc:"Task kind: HH, HHH, CD or combined.")

let strategy =
  Arg.(value & opt string "dream" & info [ "strategy"; "s" ] ~doc:"Allocator: dream, equal or fixed.")

let fixed_k = Arg.(value & opt int 32 & info [ "fixed-k" ] ~doc:"The k of Fixed_k (capacity/k per task).")
let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed.")

let fault_rate =
  Arg.(
    value & opt float 0.0
    & info [ "fault-rate" ] ~doc:"Uniform failure rate in [0,1]; 0 disables fault injection.")

let fault_seed = Arg.(value & opt int 97 & info [ "fault-seed" ] ~doc:"Fault-injection random seed.")

let fault_seeds =
  Arg.(
    value
    & opt (list int) []
    & info [ "fault-seeds" ] ~doc:"Comma-separated fault seeds; each rate runs once per seed.")

let rates =
  Arg.(
    value
    & opt (list float) []
    & info [ "rates" ] ~doc:"Comma-separated failure rates in [0,1] to sweep.")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print per-task records.")

let store_backend =
  Arg.(
    value & opt string "flat"
    & info [ "backend" ]
        ~doc:
          "Counter store backend: $(b,flat) (off-heap arrays, the default) or $(b,reference) \
           (boxed structures).  Byte-identical by construction; exposed for allocation A/B runs \
           and the differential oracles.")

let telemetry_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"DIR"
        ~doc:
          "Record a telemetry bundle (JSONL trace, Prometheus snapshot, per-task and per-switch \
           CSV) into $(docv); read it back with the $(b,inspect) subcommand.")

let profiling =
  Arg.(
    value
    & flag
    & info [ "profile" ]
        ~doc:
          "Attach a GC/allocation profile to the run (requires $(b,--telemetry)); spans land in \
           $(b,profile.json) and the $(b,inspect) subcommand renders them.")

let scenario_args f =
  Term.(
    f $ capacity $ num_switches $ switches_per_task $ tasks $ window $ duration $ epochs
    $ threshold $ bound $ kind)

let run_term =
  Term.term_result' ~usage:false
    Term.(
      scenario_args (const run) $ strategy $ fixed_k $ seed $ fault_rate $ fault_seed
      $ store_backend $ telemetry_dir $ profiling $ verbose)

let run_cmd =
  let doc = "run one measurement experiment (optionally with fault injection)" in
  Cmd.v (Cmd.info "run" ~doc) run_term

let fault_sweep_cmd =
  let doc = "sweep failure rates over several seeds; report mean±stddev degradation" in
  Cmd.v
    (Cmd.info "fault-sweep" ~doc)
    (Term.term_result' ~usage:false
       Term.(scenario_args (const fault_sweep) $ strategy $ fixed_k $ seed $ rates $ fault_seeds))

let checkpoint_cmd =
  let doc = "run part of an experiment, then write a sealed controller checkpoint" in
  let at =
    Arg.(value & opt int 100 & info [ "at" ] ~doc:"Epochs to simulate before checkpointing.")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Where to write the checkpoint document.")
  in
  let journal_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE" ~doc:"Also write the write-ahead journal to $(docv).")
  in
  Cmd.v
    (Cmd.info "checkpoint" ~doc)
    (Term.term_result' ~usage:false
       Term.(
         scenario_args (const checkpoint) $ strategy $ fixed_k $ seed $ fault_rate $ fault_seed
         $ at $ out $ journal_path))

let restore_run_cmd =
  let doc = "restore a controller from a checkpoint and keep simulating" in
  let from =
    Arg.(
      required
      & opt (some string) None
      & info [ "from"; "f" ] ~docv:"FILE" ~doc:"Checkpoint document to restore.")
  in
  let extra =
    Arg.(value & opt int 100 & info [ "epochs" ] ~doc:"Epochs to simulate after restoring.")
  in
  Cmd.v
    (Cmd.info "restore-run" ~doc)
    (Term.term_result' ~usage:false Term.(const restore_run $ from $ extra $ verbose))

let crash_recovery_cmd =
  let doc = "sweep controller crash rates; fail over from checkpoint + journal each crash" in
  let checkpoint_interval =
    Arg.(
      value
      & opt int Crash_recovery.default_checkpoint_interval
      & info [ "checkpoint-interval" ] ~doc:"Epochs between checkpoints.")
  in
  Cmd.v
    (Cmd.info "crash-recovery" ~doc)
    (Term.term_result' ~usage:false
       Term.(
         scenario_args (const crash_recovery) $ strategy $ fixed_k $ seed $ rates $ fault_seeds
         $ checkpoint_interval))

let degraded_mode_cmd =
  let doc = "sweep adversity levels: fast-degrade (breakers + deadline shedding) vs stall-baseline" in
  let levels =
    Arg.(
      value
      & opt (list float) []
      & info [ "levels" ] ~doc:"Comma-separated adversity levels in [0,1] to sweep.")
  in
  let deadline_fraction =
    Arg.(
      value
      & opt float Config.default_degraded.Config.deadline_fraction
      & info [ "deadline-fraction" ]
          ~doc:"Enforced per-epoch fetch deadline as a fraction of the epoch, in (0, 1].")
  in
  Cmd.v
    (Cmd.info "degraded-mode" ~doc)
    (Term.term_result' ~usage:false
       Term.(
         scenario_args (const degraded_mode) $ strategy $ fixed_k $ seed $ levels $ fault_seed
         $ deadline_fraction $ telemetry_dir))

(* dream-sim chaos: run a deterministic schedule bank against the oracle
   suite, shrink anything that fails, and drop replayable reproducers.
   Exit code 2 (not 124, which is reserved for argument validation) means
   the oracles found violations. *)
let chaos schedules seed horizon events canary out replay =
  let* () = check (schedules > 0) (sp "--schedules must be positive (got %d)" schedules) in
  let* () = check (seed >= 0) (sp "--seed must not be negative (got %d)" seed) in
  let* () = check (horizon >= 2) (sp "--horizon must be at least 2 epochs (got %d)" horizon) in
  let* () = check (events > 0) (sp "--events must be positive (got %d)" events) in
  match replay with
  | Some path ->
    let* doc = read_file path in
    let* file_canary, sched =
      Result.map_error (sp "invalid reproducer %s: %s" path) (Bank.reproducer_of_string doc)
    in
    let canary = canary || file_canary in
    Format.printf "replaying %s: seed %d, %d events over %d epochs%s@." path
      sched.Schedule.seed
      (List.length sched.Schedule.events)
      sched.Schedule.horizon
      (if canary then " (canary armed)" else "");
    List.iter (fun e -> Format.printf "  %a@." Schedule.pp_event e) sched.Schedule.events;
    let result = Harness.run ~canary sched in
    (match result.Harness.violations with
    | [] ->
      Format.printf "reproducer did NOT reproduce: 0 violations@.";
      exit 2
    | vs ->
      Format.printf "reproduced %d violation(s):@." (List.length vs);
      List.iter (fun v -> Format.printf "  %s@." (Oracle.to_string v)) vs;
      Ok ())
  | None ->
    let* () =
      match out with
      | None -> Ok ()
      | Some dir ->
        if Sys.file_exists dir then
          check (Sys.is_directory dir) (sp "--out: %s exists and is not a directory" dir)
        else begin
          try Ok (Sys.mkdir dir 0o755)
          with Sys_error msg -> Error (sp "--out: cannot create %s: %s" dir msg)
        end
    in
    let o = Bank.run ~canary ~horizon ~events ~schedules ~seed () in
    Chaos_coverage.print_outcome o;
    let* () =
      match out with
      | None -> Ok ()
      | Some dir ->
        List.fold_left
          (fun acc (f : Bank.failure) ->
            let* () = acc in
            let path =
              Filename.concat dir (sp "chaos-repro-%d.json" f.Bank.f_schedule.Schedule.seed)
            in
            try
              let oc = open_out path in
              output_string oc (Bank.reproducer_to_string f);
              output_char oc '\n';
              close_out oc;
              Format.printf "reproducer -> %s@." path;
              Ok ()
            with Sys_error msg -> Error (sp "cannot write reproducer %s: %s" path msg))
          (Ok ()) o.Bank.failures
    in
    if o.Bank.violations > 0 || not o.Bank.differential_ok then exit 2;
    Ok ()

let chaos_cmd =
  let doc = "run a deterministic chaos schedule bank; shrink and replay failures" in
  let schedules =
    Arg.(value & opt int 100 & info [ "schedules" ] ~doc:"Number of schedules in the bank.")
  in
  let chaos_seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Master seed the bank expands from.")
  in
  let horizon =
    Arg.(
      value
      & opt int Harness.default_horizon
      & info [ "horizon" ] ~doc:"Epochs each schedule simulates.")
  in
  let events =
    Arg.(
      value
      & opt int Harness.default_events
      & info [ "events" ] ~doc:"Fault events generated per schedule.")
  in
  let canary =
    Arg.(
      value & flag
      & info [ "canary" ]
          ~doc:
            "Arm the test-only canary bug (an over-capacity forced allocation under a \
             partition+storm overlap) to prove the oracles and shrinker catch it.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR" ~doc:"Write minimized reproducer files into $(docv).")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay a reproducer written by --out instead of running a bank.")
  in
  Cmd.v
    (Cmd.info "chaos" ~doc)
    (Term.term_result' ~usage:false
       Term.(const chaos $ schedules $ chaos_seed $ horizon $ events $ canary $ out $ replay))

let inspect dir top =
  let* () = check (top > 0) (sp "--top must be positive (got %d)" top) in
  let* () =
    check
      (Sys.file_exists dir && Sys.is_directory dir)
      (sp "%s is not a telemetry directory" dir)
  in
  let* report = Inspect.load ~top dir in
  Format.printf "%a" Inspect.pp report;
  Ok ()

let inspect_cmd =
  let doc = "summarize a telemetry bundle written by run --telemetry" in
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Telemetry directory to read.")
  in
  let top =
    Arg.(value & opt int 5 & info [ "top" ] ~doc:"How many noisiest tasks to list.")
  in
  Cmd.v
    (Cmd.info "inspect" ~doc)
    (Term.term_result' ~usage:false Term.(const inspect $ dir $ top))

let cmd =
  let doc = "run a DREAM software-defined measurement experiment" in
  Cmd.group ~default:run_term (Cmd.info "dream-sim" ~doc)
    [
      run_cmd; fault_sweep_cmd; degraded_mode_cmd; chaos_cmd; checkpoint_cmd; restore_run_cmd;
      crash_recovery_cmd; inspect_cmd;
    ]

let () = exit (Cmd.eval cmd)
