(* dream-sim: run DREAM experiments from the command line.

     dune exec bin/dream_sim.exe -- run --capacity 1024 --strategy dream
     dune exec bin/dream_sim.exe -- run --kind HH --tasks 32 --fault-rate 0.1
     dune exec bin/dream_sim.exe -- fault-sweep --rates 0.0,0.05,0.2

   The bare form (no subcommand) still runs a single experiment, so the
   pre-subcommand invocations keep working. *)

module Scenario = Dream_workload.Scenario
module Experiment = Dream_sim.Experiment
module Fault_sweep = Dream_sim.Fault_sweep
module Config = Dream_core.Config
module Metrics = Dream_core.Metrics
module Task_spec = Dream_tasks.Task_spec
module Fault_model = Dream_fault.Fault_model
module Allocator = Dream_alloc.Allocator
module Stats = Dream_util.Stats

let scenario_of capacity num_switches switches_per_task tasks window duration epochs threshold
    bound kind seed =
  let scenario =
    {
      Scenario.default with
      Scenario.capacity;
      num_switches;
      switches_per_task;
      num_tasks = tasks;
      arrival_window = window;
      mean_duration = duration;
      total_epochs = epochs;
      threshold;
      accuracy_bound = bound;
      seed;
    }
  in
  match String.lowercase_ascii kind with
  | "hh" -> Scenario.with_kind scenario Task_spec.Heavy_hitter
  | "hhh" -> Scenario.with_kind scenario Task_spec.Hierarchical_heavy_hitter
  | "cd" -> Scenario.with_kind scenario Task_spec.Change_detection
  | "combined" | "all" -> scenario
  | other -> failwith (Printf.sprintf "unknown kind %S (HH | HHH | CD | combined)" other)

let strategy_of strategy fixed_k =
  match String.lowercase_ascii strategy with
  | "dream" -> Experiment.dream_strategy
  | "equal" -> Allocator.Equal
  | "fixed" -> Allocator.Fixed fixed_k
  | other -> failwith (Printf.sprintf "unknown strategy %S (dream | equal | fixed)" other)

let run capacity num_switches switches_per_task tasks window duration epochs threshold bound kind
    strategy fixed_k seed fault_rate fault_seed verbose =
  let scenario =
    scenario_of capacity num_switches switches_per_task tasks window duration epochs threshold
      bound kind seed
  in
  let strategy = strategy_of strategy fixed_k in
  let config =
    if fault_rate <= 0.0 then Config.default
    else
      { Config.default with Config.faults = Some (Fault_model.uniform ~seed:fault_seed fault_rate) }
  in
  Format.printf "scenario: %a@." Scenario.pp scenario;
  Format.printf "expected concurrency: %.1f tasks@." (Scenario.concurrency scenario);
  if fault_rate > 0.0 then
    Format.printf "fault injection: uniform rate %.3f (seed %d)@." fault_rate fault_seed;
  let result = Experiment.run ~config scenario strategy in
  let s = result.Experiment.summary in
  Format.printf "@.%s results:@." result.Experiment.strategy;
  Format.printf "  satisfaction  mean %.1f%%  5th-pct %.1f%%@." s.Metrics.mean_satisfaction
    s.Metrics.p5_satisfaction;
  Format.printf "  tasks         submitted %d  admitted %d  completed %d@." s.Metrics.submitted
    s.Metrics.admitted s.Metrics.completed;
  Format.printf "  rejection     %.1f%%   drop %.1f%%@." s.Metrics.rejection_pct s.Metrics.drop_pct;
  Format.printf "  switch rules  installed %d  fetched %d@." result.Experiment.rules_installed
    result.Experiment.rules_fetched;
  if s.Metrics.robustness <> Metrics.no_faults then
    Format.printf "  robustness    %a@." Metrics.pp_robustness s.Metrics.robustness;
  if verbose then begin
    Format.printf "@.per-task records:@.";
    List.iter
      (fun (r : Metrics.record) ->
        Format.printf "  task %3d %-4s %-9s arrived %4d  active %4d  satisfaction %5.1f%%@."
          r.Metrics.task_id
          (Task_spec.kind_to_string r.Metrics.kind)
          (match r.Metrics.outcome with
          | Metrics.Completed -> "completed"
          | Metrics.Dropped -> "dropped"
          | Metrics.Rejected -> "rejected")
          r.Metrics.arrived_at r.Metrics.active_epochs
          (r.Metrics.satisfaction *. 100.0))
      result.Experiment.records
  end

let fault_sweep capacity num_switches switches_per_task tasks window duration epochs threshold
    bound kind strategy fixed_k seed rates fault_seed =
  let scenario =
    scenario_of capacity num_switches switches_per_task tasks window duration epochs threshold
      bound kind seed
  in
  let strategy = strategy_of strategy fixed_k in
  let rates = if rates = [] then Fault_sweep.default_rates else rates in
  Format.printf "scenario: %a@." Scenario.pp scenario;
  Format.printf "strategy: %s   fault seed: %d@.@." (Allocator.strategy_name strategy) fault_seed;
  let points = Fault_sweep.sweep ~fault_seed ~rates scenario strategy in
  Fault_sweep.print_points points

open Cmdliner

let capacity = Arg.(value & opt int 1024 & info [ "capacity"; "c" ] ~doc:"TCAM entries per switch.")
let num_switches = Arg.(value & opt int 8 & info [ "switches" ] ~doc:"Number of switches.")

let switches_per_task =
  Arg.(value & opt int 8 & info [ "switches-per-task" ] ~doc:"Switches seeing each task (power of two).")

let tasks = Arg.(value & opt int 88 & info [ "tasks"; "n" ] ~doc:"Number of submitted tasks.")
let window = Arg.(value & opt int 280 & info [ "window" ] ~doc:"Arrival window in epochs.")
let duration = Arg.(value & opt int 140 & info [ "duration" ] ~doc:"Mean task duration in epochs.")
let epochs = Arg.(value & opt int 560 & info [ "epochs" ] ~doc:"Total simulated epochs.")
let threshold = Arg.(value & opt float 8.0 & info [ "threshold" ] ~doc:"Task threshold in Mb.")
let bound = Arg.(value & opt float 0.8 & info [ "bound" ] ~doc:"Accuracy bound in [0,1].")

let kind =
  Arg.(value & opt string "combined" & info [ "kind"; "k" ] ~doc:"Task kind: HH, HHH, CD or combined.")

let strategy =
  Arg.(value & opt string "dream" & info [ "strategy"; "s" ] ~doc:"Allocator: dream, equal or fixed.")

let fixed_k = Arg.(value & opt int 32 & info [ "fixed-k" ] ~doc:"The k of Fixed_k (capacity/k per task).")
let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed.")

let fault_rate =
  Arg.(
    value & opt float 0.0
    & info [ "fault-rate" ] ~doc:"Uniform failure rate in [0,1]; 0 disables fault injection.")

let fault_seed = Arg.(value & opt int 97 & info [ "fault-seed" ] ~doc:"Fault-injection random seed.")

let rates =
  Arg.(
    value
    & opt (list float) []
    & info [ "rates" ] ~doc:"Comma-separated failure rates to sweep (default 0,0.02,0.05,0.1,0.2).")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print per-task records.")

let run_term =
  Term.(
    const run $ capacity $ num_switches $ switches_per_task $ tasks $ window $ duration $ epochs
    $ threshold $ bound $ kind $ strategy $ fixed_k $ seed $ fault_rate $ fault_seed $ verbose)

let run_cmd =
  let doc = "run one measurement experiment (optionally with fault injection)" in
  Cmd.v (Cmd.info "run" ~doc) run_term

let fault_sweep_cmd =
  let doc = "sweep failure rates and report satisfaction/accuracy degradation" in
  Cmd.v
    (Cmd.info "fault-sweep" ~doc)
    Term.(
      const fault_sweep $ capacity $ num_switches $ switches_per_task $ tasks $ window $ duration
      $ epochs $ threshold $ bound $ kind $ strategy $ fixed_k $ seed $ rates $ fault_seed)

let cmd =
  let doc = "run a DREAM software-defined measurement experiment" in
  Cmd.group ~default:run_term (Cmd.info "dream-sim" ~doc) [ run_cmd; fault_sweep_cmd ]

let () = exit (Cmd.eval cmd)
