(* dream-figures: regenerate the paper's evaluation figures.

     dune exec bin/dream_figures.exe -- --list
     dune exec bin/dream_figures.exe -- fig6
     dune exec bin/dream_figures.exe -- --all --full
     dune exec bin/dream_figures.exe -- --all --snapshot-dir bench/out *)

module Figures = Dream_sim.Figures

let fail msg =
  prerr_endline msg;
  exit 1

let run ids all full listing snapshot_dir =
  let quick = not full in
  if listing then begin
    print_endline "figure ids:";
    List.iter (fun (id, descr) -> Printf.printf "  %-6s %s\n" id descr) Figures.all
  end
  else if all then begin
    match Figures.run_all ?snapshot_dir ~quick () with
    | Ok () -> ()
    | Error msg -> fail msg
  end
  else begin
    match ids with
    | [] ->
      prerr_endline "no figure ids given (use --list to see them, or --all)";
      exit 1
    | _ :: _ ->
      List.iter
        (fun id ->
          match Figures.run ?snapshot_dir ~quick id with
          | Ok () -> ()
          | Error msg -> fail msg)
        ids
  end

open Cmdliner

let ids = Arg.(value & pos_all string [] & info [] ~docv:"FIGURE" ~doc:"Figure ids (e.g. fig6).")
let all = Arg.(value & flag & info [ "all"; "a" ] ~doc:"Run every figure.")

let full =
  Arg.(value & flag & info [ "full" ] ~doc:"Full-scale experiments (several minutes) instead of quick.")

let listing = Arg.(value & flag & info [ "list"; "l" ] ~doc:"List available figure ids.")

let snapshot_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot-dir" ] ~docv:"DIR"
        ~doc:"Write a BENCH_<figure>.json benchmark snapshot per figure into $(docv).")

let cmd =
  let doc = "regenerate the DREAM paper's evaluation figures" in
  Cmd.v (Cmd.info "dream-figures" ~doc)
    Term.(const run $ ids $ all $ full $ listing $ snapshot_dir)

let () = exit (Cmd.eval cmd)
