(* dream-lint: AST-based static analysis for the DREAM tree.

     dune exec dream-lint -- lib bin bench test
     dune exec dream-lint -- --format json lib > report.json
     dune exec dream-lint -- --rules determinism-random,float-equality lib

   Walks the given paths for .ml files, runs every rule (or the --rules
   subset) over each parsetree, and prints findings.  Exit codes: 0 when
   clean, 1 when there are findings, 124 on usage errors.  Suppress a
   single site with [@lint.allow "rule-id"]; unused suppressions are
   themselves findings, so the allowlist can only shrink. *)

module Engine = Dream_lint.Engine
module Finding = Dream_lint.Finding
module Report = Dream_lint.Report
module Rules = Dream_lint.Rules

let ( let* ) = Result.bind

(* Deterministic recursive walk: sorted entries, hidden and build
   directories skipped. *)
let rec ml_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.filter (fun entry ->
           (not (String.length entry > 0 && entry.[0] = '.'))
           && entry <> "_build" && entry <> "_opam")
    |> List.concat_map (fun entry -> ml_files_under (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let resolve_rules = function
  | [] -> Ok Rules.all
  | ids ->
    List.fold_left
      (fun acc id ->
        let* rules = acc in
        match Rules.find id with
        | Some rule -> Ok (rule :: rules)
        | None ->
          Error
            (Printf.sprintf "unknown rule %S (available: %s)" id
               (String.concat ", " Rules.ids)))
      (Ok []) ids
    |> Result.map List.rev

let check_paths paths =
  match List.filter (fun p -> not (Sys.file_exists p)) paths with
  | [] -> Ok ()
  | missing -> Error ("no such path: " ^ String.concat ", " missing)

let run format rule_ids paths =
  let* rules = resolve_rules rule_ids in
  let paths = if paths = [] then [ "lib"; "bin"; "bench"; "test" ] else paths in
  let* () = check_paths paths in
  let files = List.concat_map ml_files_under paths in
  let* () = if files = [] then Error "no .ml files under the given paths" else Ok () in
  let findings =
    List.concat_map (fun file -> Engine.lint_file ~rules file) files
    |> List.sort Finding.compare
  in
  let ppf = Format.std_formatter in
  (match format with
  | `Text -> Report.text ppf findings
  | `Json -> Report.json ppf findings);
  Ok (if findings = [] then 0 else 1)

open Cmdliner

let format =
  let parse = function
    | "text" -> Ok `Text
    | "json" -> Ok `Json
    | other -> Error (`Msg (Printf.sprintf "unknown format %S (text | json)" other))
  in
  let print ppf f = Format.pp_print_string ppf (match f with `Text -> "text" | `Json -> "json") in
  Arg.(
    value
    & opt (conv (parse, print)) `Text
    & info [ "format"; "f" ] ~docv:"FMT" ~doc:"Report format: $(b,text) or $(b,json).")

let rule_ids =
  Arg.(
    value
    & opt (list string) []
    & info [ "rules"; "r" ] ~docv:"IDS"
        ~doc:"Comma-separated rule ids to run (default: all rules).")

let paths =
  Arg.(
    value
    & pos_all string []
    & info [] ~docv:"PATHS" ~doc:"Files or directories to lint (default: lib bin bench test).")

let cmd =
  let doc = "enforce determinism, totality and observability invariants on the DREAM tree" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses every .ml file under $(i,PATHS) with the OCaml compiler front end and runs \
         syntactic rules over the parsetree.  Exits 0 when clean and 1 when there are \
         findings, so it can gate CI.";
      `S "RULES";
    ]
    @ List.map
        (fun (r : Rules.t) -> `P (Printf.sprintf "$(b,%s): %s" r.Rules.id r.Rules.doc))
        Rules.all
    @ [
        `P
          (Printf.sprintf
             "$(b,%s): a site-level [@lint.allow] that suppresses nothing; $(b,%s): a file \
              that does not parse."
             Engine.unused_suppression_rule Engine.parse_error_rule);
      ]
  in
  Cmd.v
    (Cmd.info "dream-lint" ~doc ~man)
    (Term.term_result' ~usage:false Term.(const run $ format $ rule_ids $ paths))

let () = exit (Cmd.eval' cmd)
