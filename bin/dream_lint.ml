(* dream-lint: AST-based static analysis for the DREAM tree.

     dune exec dream-lint -- lib bin bench test
     dune exec dream-lint -- --format json lib > report.json
     dune exec dream-lint -- --rules determinism-random,float-equality lib
     dune exec dream-lint -- --baseline lint/BASELINE.json lib bin bench test
     dune exec dream-lint -- --baseline lint/BASELINE.json --update-baseline lib bin bench test

   Walks the given paths for .ml files, runs every per-file rule (or the
   --rules subset) over each parsetree, then the two interprocedural
   passes (hot-path-alloc over the [@hot] call-graph closure, and
   domain-safety over toplevel mutable state), and prints findings.

   With --baseline the committed findings baseline gates as a ratchet:
   only findings *beyond* the per-(rule, file) baseline counts fail the
   run, --update-baseline rewrites the file (which can only shrink once
   it exists), and --snapshot-dir emits the current per-rule debt as
   BENCH_lint_debt.json for dream-bench trend.

   Exit codes: 0 when clean (or fully baselined), 1 when there are new
   findings (or the ratchet refuses a growing update), 124 on usage
   errors.  Suppress a single site with [@lint.allow "rule-id"]
   ([@alloc.allow "reason"] for hot-path-alloc); unused suppressions are
   themselves findings, so the allowlist can only shrink. *)

module Baseline = Dream_lint.Baseline
module Engine = Dream_lint.Engine
module Finding = Dream_lint.Finding
module Report = Dream_lint.Report
module Rules = Dream_lint.Rules

let ( let* ) = Result.bind

let resolve_rules = function
  | [] -> Ok Rules.all
  | ids ->
    List.fold_left
      (fun acc id ->
        let* rules = acc in
        match Rules.find id with
        | Some rule -> Ok (rule :: rules)
        | None ->
          Error
            (Printf.sprintf "unknown rule %S (available: %s)" id
               (String.concat ", " Rules.ids)))
      (Ok []) ids
    |> Result.map List.rev

let check_paths paths =
  match List.filter (fun p -> not (Sys.file_exists p)) paths with
  | [] -> Ok ()
  | missing -> Error ("no such path: " ^ String.concat ", " missing)

let write_snapshot snapshot_dir findings =
  match snapshot_dir with
  | None -> Ok ()
  | Some dir -> (
    match Dream_obs.Bench_snapshot.write (Baseline.debt_snapshot findings) ~dir with
    | Ok path ->
      Printf.eprintf "wrote %s\n%!" path;
      Ok ()
    | Error e -> Error e)

(* The ratchet gate: split findings into baselined and new.  "New" is
   every finding under a (rule, file) key whose count exceeds its
   baseline entry — counts, not line numbers, so unrelated edits moving a
   finding within its file never trip the gate. *)
let gate ~baseline findings =
  let current = Baseline.of_findings findings in
  let d = Baseline.diff ~baseline ~current in
  let fresh_key (f : Finding.t) =
    List.exists
      (fun (g : Baseline.delta) ->
        g.Baseline.d_rule = f.Finding.rule && g.Baseline.d_file = f.Finding.file)
      d.Baseline.fresh
  in
  let fresh_findings = List.filter fresh_key findings in
  let new_count =
    List.fold_left
      (fun acc (g : Baseline.delta) -> acc + g.Baseline.d_current - g.Baseline.d_baseline)
      0 d.Baseline.fresh
  in
  (d, fresh_findings, new_count, List.length findings - new_count)

let update_baseline_file ~path ~findings =
  let old_ = if Sys.file_exists path then Some (Baseline.read path) else None in
  let* old_ =
    match old_ with
    | None -> Ok None
    | Some (Ok b) -> Ok (Some b)
    | Some (Error e) -> Error e
  in
  match Baseline.update ~old_ ~current:(Baseline.of_findings findings) with
  | Ok fresh ->
    let* () = Baseline.write fresh ~path in
    Printf.eprintf "baseline %s: %d entries covering %d findings\n%!" path
      (List.length fresh)
      (List.fold_left (fun acc e -> acc + e.Baseline.b_count) 0 fresh);
    Ok 0
  | Error msg ->
    (* Ratchet refusal is a failed run (1), not a usage error (124). *)
    Printf.eprintf "%s\n%!" msg;
    Ok 1

let run format rule_ids baseline_path update_baseline snapshot_dir paths =
  let* rules = resolve_rules rule_ids in
  let* () =
    if update_baseline && baseline_path = None then
      Error "--update-baseline needs --baseline FILE"
    else Ok ()
  in
  let paths = if paths = [] then [ "lib"; "bin"; "bench"; "test" ] else paths in
  let* () = check_paths paths in
  let files = List.concat_map Engine.ml_files_under paths in
  let* () = if files = [] then Error "no .ml files under the given paths" else Ok () in
  let findings = Engine.lint_files ~rules files in
  let* () = write_snapshot snapshot_dir findings in
  let ppf = Format.std_formatter in
  match baseline_path with
  | None ->
    (match format with
    | `Text -> Report.text ppf findings
    | `Json -> Report.json ppf findings);
    Ok (if findings = [] then 0 else 1)
  | Some path when update_baseline -> update_baseline_file ~path ~findings
  | Some path ->
    let* baseline =
      if Sys.file_exists path then Baseline.read path
      else
        Error
          (Printf.sprintf "no baseline at %s; create one with --update-baseline" path)
    in
    let d, fresh_findings, new_count, baselined = gate ~baseline findings in
    (match format with
    | `Text ->
      Report.text ~baseline:(baselined, new_count) ppf fresh_findings;
      List.iter
        (fun (g : Baseline.delta) ->
          Format.fprintf ppf
            "stale baseline entry: %s %s (%d baselined, %d found); shrink it with \
             --update-baseline@."
            g.Baseline.d_rule g.Baseline.d_file g.Baseline.d_baseline g.Baseline.d_current)
        d.Baseline.improved
    | `Json -> Report.json ~baseline:(baselined, new_count) ppf fresh_findings);
    Ok (if d.Baseline.fresh = [] then 0 else 1)

open Cmdliner

let format =
  let parse = function
    | "text" -> Ok `Text
    | "json" -> Ok `Json
    | other -> Error (`Msg (Printf.sprintf "unknown format %S (text | json)" other))
  in
  let print ppf f = Format.pp_print_string ppf (match f with `Text -> "text" | `Json -> "json") in
  Arg.(
    value
    & opt (conv (parse, print)) `Text
    & info [ "format"; "f" ] ~docv:"FMT" ~doc:"Report format: $(b,text) or $(b,json).")

let rule_ids =
  Arg.(
    value
    & opt (list string) []
    & info [ "rules"; "r" ] ~docv:"IDS"
        ~doc:"Comma-separated rule ids to run (default: all rules).")

let baseline_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline"; "b" ] ~docv:"FILE"
        ~doc:
          "Committed findings baseline (ratchet): only findings beyond the per-(rule, \
           file) counts in $(docv) fail the run.")

let update_baseline =
  Arg.(
    value & flag
    & info [ "update-baseline" ]
        ~doc:
          "Rewrite $(b,--baseline) $(i,FILE) from the current findings.  Once the file \
           exists it can only shrink: a grown count is refused (exit 1) — fix the new \
           finding or justify it at the site instead.")

let snapshot_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot-dir" ] ~docv:"DIR"
        ~doc:
          "Also write the per-rule finding counts as $(b,BENCH_lint_debt.json) under \
           $(docv), for $(b,dream-bench) $(b,trend).")

let paths =
  Arg.(
    value
    & pos_all string []
    & info [] ~docv:"PATHS" ~doc:"Files or directories to lint (default: lib bin bench test).")

let cmd =
  let doc = "enforce determinism, totality and observability invariants on the DREAM tree" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses every .ml file under $(i,PATHS) with the OCaml compiler front end, runs \
         syntactic rules over each parsetree, then the interprocedural passes over the \
         whole set: $(b,hot-path-alloc) classifies allocation sites reachable from \
         [@hot] entry points through the intra-repo call graph, and $(b,domain-safety) \
         inventories toplevel mutable state ahead of multi-domain sharding.  Exits 0 \
         when clean and 1 when there are findings, so it can gate CI; with \
         $(b,--baseline) only findings beyond the committed ratchet fail.";
      `S "RULES";
    ]
    @ List.map
        (fun (r : Rules.t) -> `P (Printf.sprintf "$(b,%s): %s" r.Rules.id r.Rules.doc))
        Rules.all
    @ [
        `P
          (Printf.sprintf
             "$(b,%s): a site-level [@lint.allow] or [@alloc.allow] that suppresses \
              nothing; $(b,%s): a file that does not parse."
             Engine.unused_suppression_rule Engine.parse_error_rule);
      ]
  in
  Cmd.v
    (Cmd.info "dream-lint" ~doc ~man)
    (Term.term_result' ~usage:false
       Term.(
         const run $ format $ rule_ids $ baseline_path $ update_baseline $ snapshot_dir
         $ paths))

let () = exit (Cmd.eval' cmd)
