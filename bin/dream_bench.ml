(* dream-bench: compare and trend BENCH_<figure>.json benchmark snapshots.

     dream-bench diff BASE NEW [--tolerance PCT] [--format text|json]
     dream-bench trend DIR...

   [diff] compares a baseline snapshot (file or directory of snapshots)
   against a freshly generated one.  Exit codes are the CI perf gate's
   contract: 0 clean, 1 at least one gating metric regressed, 124 bad
   input (unreadable snapshot, figure/scale mismatch, missing
   counterpart).

   [trend] folds an ordered series of snapshot directories (or files)
   into per-metric trajectories for the nightly trend job. *)

module Snapshot = Dream_obs.Bench_snapshot
module Diff = Dream_obs.Bench_diff
module Json = Dream_obs.Json

let ( let* ) = Result.bind

(* A path argument is either one snapshot file or a directory holding
   BENCH_*.json files; directories expand in filename order so pairing
   and series order are deterministic. *)
let snapshot_paths path =
  if not (Sys.file_exists path) then Error (Printf.sprintf "%s: no such file or directory" path)
  else if Sys.is_directory path then begin
    let entries =
      Sys.readdir path |> Array.to_list
      |> List.filter (fun f ->
             String.length f > 6
             && String.sub f 0 6 = "BENCH_"
             && Filename.check_suffix f ".json")
      |> List.sort compare
      |> List.map (Filename.concat path)
    in
    match entries with
    | [] -> Error (Printf.sprintf "%s: no BENCH_*.json snapshots" path)
    | _ :: _ -> Ok entries
  end
  else Ok [ path ]

let load_all paths =
  List.fold_left
    (fun acc p ->
      let* acc = acc in
      let* snap = Snapshot.read p in
      Ok (snap :: acc))
    (Ok []) paths
  |> Result.map List.rev

let load_path path =
  let* paths = snapshot_paths path in
  load_all paths

(* Pair base and new snapshots by figure id.  Every base figure must have
   a counterpart — the baseline is the coverage contract — while figures
   only the new set carries are reported but never gate. *)
let pair_by_figure bases currents =
  let find fig = List.find_opt (fun s -> s.Snapshot.figure = fig) currents in
  List.fold_left
    (fun acc base ->
      let* acc = acc in
      match find base.Snapshot.figure with
      | Some current -> Ok ((base, current) :: acc)
      | None ->
        Error (Printf.sprintf "no snapshot for baseline figure %S in NEW" base.Snapshot.figure))
    (Ok []) bases
  |> Result.map List.rev

let diff_cmd base_path new_path tolerance format =
  let* bases = load_path base_path in
  let* currents = load_path new_path in
  let* pairs = pair_by_figure bases currents in
  let* reports =
    List.fold_left
      (fun acc (base, current) ->
        let* acc = acc in
        let* report = Diff.diff ?tolerance_pct:tolerance ~base current in
        Ok (report :: acc))
      (Ok []) pairs
    |> Result.map List.rev
  in
  let extra =
    List.filter
      (fun s -> not (List.exists (fun b -> b.Snapshot.figure = s.Snapshot.figure) bases))
      currents
  in
  (match format with
  | `Text ->
    List.iter (fun r -> Format.printf "%a" Diff.pp_report r) reports;
    List.iter
      (fun s -> Format.printf "note: figure %s has no baseline (not gated)@." s.Snapshot.figure)
      extra;
    let total = Diff.regressions reports in
    if total = 0 then Format.printf "perf gate: clean (%d figure(s))@." (List.length reports)
    else Format.printf "perf gate: %d regression(s)@." total
  | `Json ->
    print_endline (Json.to_string (Json.List (List.map Diff.report_to_json reports))));
  if Diff.regressions reports > 0 then exit 1;
  Ok ()

let trend_cmd dirs =
  let* series =
    List.fold_left
      (fun acc dir ->
        let* acc = acc in
        let* snaps = load_path dir in
        let label = Filename.basename (Filename.remove_extension dir) in
        Ok (List.rev_append (List.rev_map (fun s -> (label, s)) snaps) acc))
      (Ok []) dirs
    |> Result.map List.rev
  in
  Format.printf "%a" Diff.pp_trend (Diff.trend series);
  Ok ()

open Cmdliner

let tolerance =
  Arg.(
    value
    & opt (some float) None
    & info [ "tolerance" ] ~docv:"PCT"
        ~doc:"Default gating tolerance in percent for metrics without a per-metric override.")

let format =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Output format: $(b,text) or $(b,json).")

let base_path =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BASE" ~doc:"Baseline snapshot file or directory of BENCH_*.json files.")

let new_path =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"NEW" ~doc:"Freshly generated snapshot file or directory.")

let trend_dirs =
  Arg.(
    non_empty
    & pos_all string []
    & info [] ~docv:"DIR" ~doc:"Snapshot directories (or files) in series order.")

let diff_term =
  Term.term_result' ~usage:false Term.(const diff_cmd $ base_path $ new_path $ tolerance $ format)

let trend_term = Term.term_result' ~usage:false Term.(const trend_cmd $ trend_dirs)

let cmd =
  let doc = "compare and trend DREAM benchmark snapshots" in
  Cmd.group (Cmd.info "dream-bench" ~doc)
    [
      Cmd.v
        (Cmd.info "diff"
           ~doc:
             "Compare BASE against NEW; exit 1 on any gating regression, 124 on bad input.")
        diff_term;
      Cmd.v (Cmd.info "trend" ~doc:"Summarize per-metric trajectories across a snapshot series.")
        trend_term;
    ]

let () = exit (Cmd.eval cmd)
