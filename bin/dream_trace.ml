(* dream-trace: generate, inspect and replay traffic trace files.

     dune exec bin/dream_trace.exe -- gen --out trace.txt --epochs 100
     dune exec bin/dream_trace.exe -- info trace.txt
     dune exec bin/dream_trace.exe -- replay trace.txt --kind HH *)

module Rng = Dream_util.Rng
module Prefix = Dream_prefix.Prefix
module Topology = Dream_traffic.Topology
module Generator = Dream_traffic.Generator
module Profile = Dream_traffic.Profile
module Trace_io = Dream_traffic.Trace_io
module Source = Dream_traffic.Source
module Aggregate = Dream_traffic.Aggregate
module Epoch_data = Dream_traffic.Epoch_data
module Task_spec = Dream_tasks.Task_spec
module Controller = Dream_core.Controller
module Allocator = Dream_alloc.Allocator
module Metrics = Dream_core.Metrics

let parse_filter s =
  try Prefix.of_string s with Invalid_argument msg -> failwith msg

let gen out epochs seed filter_s switches threshold =
  let filter = parse_filter filter_s in
  let rng = Rng.create seed in
  let topology = Topology.create rng ~filter ~num_switches:switches ~switches_per_task:switches in
  let generator = Generator.create (Rng.split rng) ~topology ~profile:(Profile.default ~threshold) in
  let trace = Trace_io.record generator ~epochs in
  Trace_io.save_file out trace;
  Printf.printf "wrote %d epochs of synthetic traffic under %s to %s\n" epochs
    (Prefix.to_string filter) out

let trace_info path =
  match Trace_io.load_file path with
  | Error msg ->
    prerr_endline msg;
    exit 1
  | Ok epochs ->
    let total =
      List.fold_left (fun acc (e : Epoch_data.t) -> acc +. Aggregate.total e.Epoch_data.combined) 0.0 epochs
    in
    let switches =
      List.fold_left
        (fun acc (e : Epoch_data.t) ->
          Dream_traffic.Switch_id.Set.union acc (Epoch_data.active_switches e))
        Dream_traffic.Switch_id.Set.empty epochs
    in
    Printf.printf "%s: %d epochs, %d switches, %.1f Mb total\n" path (List.length epochs)
      (Dream_traffic.Switch_id.Set.cardinal switches)
      total;
    List.iteri
      (fun i (e : Epoch_data.t) ->
        if i < 5 then
          Printf.printf "  epoch %d: %d flows, %.1f Mb\n" e.Epoch_data.epoch
            (Aggregate.num_addresses e.Epoch_data.combined)
            (Aggregate.total e.Epoch_data.combined))
      epochs

let replay path kind_s filter_s threshold bound switches seed =
  match Trace_io.load_file path with
  | Error msg ->
    prerr_endline msg;
    exit 1
  | Ok epochs ->
    let filter = parse_filter filter_s in
    let kind =
      match String.uppercase_ascii kind_s with
      | "HH" -> Task_spec.Heavy_hitter
      | "HHH" -> Task_spec.Hierarchical_heavy_hitter
      | "CD" -> Task_spec.Change_detection
      | other -> failwith ("unknown kind " ^ other)
    in
    (* The prefix-to-switch mapping must match the one the trace was
       produced with, so replay shares gen's seed. *)
    let rng = Rng.create seed in
    let topology = Topology.create rng ~filter ~num_switches:switches ~switches_per_task:switches in
    let spec = Task_spec.make ~kind ~filter ~leaf_length:24 ~threshold ~accuracy_bound:bound () in
    let controller =
      Controller.create ~config:Dream_core.Config.default
        ~strategy:(Allocator.Dream Dream_alloc.Dream_allocator.default_config)
        ~num_switches:switches ~capacity:1024
    in
    let duration = List.length epochs in
    (match
       Controller.submit controller ~spec ~topology
         ~source:(Source.replay ~cycle:false (Array.of_list epochs))
         ~duration
     with
    | `Admitted id ->
      Controller.run controller ~epochs:duration;
      (match Controller.last_report controller ~task_id:id with
      | Some report -> Format.printf "%a@." Dream_tasks.Report.pp report
      | None -> ());
      Controller.finalize controller;
      Format.printf "%a@." Metrics.pp_summary (Controller.summary controller)
    | `Rejected -> prerr_endline "task rejected")

open Cmdliner

let out = Arg.(value & opt string "trace.txt" & info [ "out"; "o" ] ~doc:"Output file.")
let epochs = Arg.(value & opt int 100 & info [ "epochs" ] ~doc:"Epochs to generate.")
let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed.")
let filter = Arg.(value & opt string "10.16.0.0/12" & info [ "filter" ] ~doc:"Flow filter prefix.")
let switches = Arg.(value & opt int 4 & info [ "switches" ] ~doc:"Number of switches.")
let threshold = Arg.(value & opt float 8.0 & info [ "threshold" ] ~doc:"Task threshold (Mb).")
let bound = Arg.(value & opt float 0.8 & info [ "bound" ] ~doc:"Accuracy bound.")
let kind = Arg.(value & opt string "HH" & info [ "kind"; "k" ] ~doc:"Task kind for replay.")
let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc:"Trace file.")

let gen_cmd =
  Cmd.v
    (Cmd.info "gen" ~doc:"generate a synthetic trace file")
    Term.(const gen $ out $ epochs $ seed $ filter $ switches $ threshold)

let info_cmd =
  Cmd.v (Cmd.info "info" ~doc:"summarise a trace file") Term.(const trace_info $ path)

let replay_cmd =
  Cmd.v
    (Cmd.info "replay" ~doc:"run a measurement task over a recorded trace")
    Term.(const replay $ path $ kind $ filter $ threshold $ bound $ switches $ seed)

let cmd =
  Cmd.group (Cmd.info "dream-trace" ~doc:"traffic trace tooling for DREAM")
    [ gen_cmd; info_cmd; replay_cmd ]

let () = exit (Cmd.eval cmd)
