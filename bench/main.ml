(* Benchmark harness: regenerates every figure of the paper's evaluation
   (Figs 2-17; Table 1's behaviours are exercised by the test suite) and
   runs Bechamel micro-benchmarks of the hot controller paths.

   Usage:
     bench/main.exe                 run all figures (quick scale) + micro-benchmarks
     bench/main.exe fig6 fig17      run selected figures
     bench/main.exe --full          full-scale figures (several minutes)
     bench/main.exe --micro         micro-benchmarks only
     bench/main.exe --list          list figure ids
     bench/main.exe --snapshot-dir DIR
                                    also write BENCH_<figure>.json snapshots into DIR *)

module Figures = Dream_sim.Figures

let list_figures () =
  print_endline "figure ids:";
  List.iter (fun (id, descr) -> Printf.printf "  %-6s %s\n" id descr) Figures.all

(* ---- Bechamel micro-benchmarks (Fig 17b's allocation-delay source) ---- *)

let micro_tests () =
  let open Bechamel in
  let module Rng = Dream_util.Rng in
  let module Prefix = Dream_prefix.Prefix in
  let module Switch_id = Dream_traffic.Switch_id in
  let module Topology = Dream_traffic.Topology in
  let module Generator = Dream_traffic.Generator in
  let module Profile = Dream_traffic.Profile in
  let module Aggregate = Dream_traffic.Aggregate in
  let module Epoch_data = Dream_traffic.Epoch_data in
  let module Task_spec = Dream_tasks.Task_spec in
  let module Task = Dream_tasks.Task in
  let module Dream_allocator = Dream_alloc.Dream_allocator in
  let module Task_view = Dream_alloc.Task_view in
  (* Shared fixture: a drilled-down HH task over 8 switches. *)
  let rng = Rng.create 99 in
  let filter = Prefix.of_string "10.16.0.0/12" in
  let topology = Topology.create rng ~filter ~num_switches:8 ~switches_per_task:8 in
  let spec =
    Task_spec.make ~kind:Task_spec.Heavy_hitter ~filter ~leaf_length:24 ~threshold:8.0 ()
  in
  let generator =
    Generator.create (Rng.split rng) ~topology ~profile:(Profile.default ~threshold:8.0)
  in
  let task = Task.create ~id:0 ~spec ~topology () in
  let allocations =
    Switch_id.Set.fold
      (fun sw acc -> Switch_id.Map.add sw 64 acc)
      (Task.switches task) Switch_id.Map.empty
  in
  let data = ref (Generator.next generator) in
  let feed () =
    data := Generator.next generator;
    let readings =
      Switch_id.Set.fold
        (fun sw acc ->
          let aggregate = Epoch_data.switch_view !data sw in
          let pairs =
            List.map (fun p -> (p, Aggregate.volume aggregate p)) (Task.desired_rules task sw)
          in
          (sw, pairs) :: acc)
        (Task.switches task) []
    in
    Task.ingest_counters task readings
  in
  for _ = 1 to 30 do
    feed ();
    ignore (Task.estimate_accuracy task);
    Task.configure task ~allocations
  done;
  (* Allocator fixture: one switch, 64 tasks with random accuracies. *)
  let cfg = Dream_allocator.default_config in
  let allocator = Dream_allocator.create cfg ~capacities:[ (0, 4096) ] in
  let acc_rng = Rng.create 5 in
  let views =
    List.init 64 (fun i ->
        let accuracy = Rng.float acc_rng 1.0 in
        {
          Task_view.id = i;
          switches = Switch_id.Set.singleton 0;
          bound = 0.8;
          drop_priority = i;
          overall = (fun _ -> accuracy);
          used = (fun _ -> 64);
        })
  in
  List.iter (fun v -> ignore (Dream_allocator.try_admit allocator v)) views;
  let agg = Epoch_data.switch_view !data 0 in
  (* Telemetry fixture: the instruments the controller hits every epoch. *)
  let module Registry = Dream_obs.Registry in
  let module Trace = Dream_obs.Trace in
  let reg = Registry.create () in
  let ctr = Registry.counter reg "bench_counter" in
  let histo = Registry.histogram reg ~labels:[ ("phase", "bench") ] "bench_ms" in
  let trace = Trace.create () in
  [
    Test.make ~name:"allocator.reallocate (64 tasks, 1 switch)"
      (Staged.stage (fun () -> Dream_allocator.reallocate allocator views));
    Test.make ~name:"registry.counter incr (hot path)"
      (Staged.stage (fun () -> Registry.Counter.incr ctr));
    Test.make ~name:"registry.counter find-or-create + incr"
      (Staged.stage (fun () -> Registry.Counter.incr (Registry.counter reg "bench_counter")));
    Test.make ~name:"registry.histogram observe"
      (Staged.stage (fun () -> Registry.Histogram.observe histo 3.7));
    Test.make ~name:"trace.span append"
      (Staged.stage (fun () -> Trace.span trace ~epoch:0 ~phase:"bench" ~ms:1.0));
    Test.make ~name:"task.configure (divide-and-merge)"
      (Staged.stage (fun () -> Task.configure task ~allocations));
    Test.make ~name:"task.report+estimate (HH)"
      (Staged.stage (fun () ->
           ignore (Task.make_report task ~epoch:0);
           ignore (Task.estimate_accuracy task)));
    Test.make ~name:"aggregate.volume (prefix counter read)"
      (Staged.stage (fun () -> ignore (Aggregate.volume agg filter)));
    Test.make ~name:"generator.next (one traffic epoch)"
      (Staged.stage (fun () -> ignore (Generator.next generator)));
  ]
  @
  (* Flat-vs-reference store differential micro-benchmarks: the same flow
     list and TCAM read set through each backend, so `--micro` output
     shows the cost of the representation itself, isolated from the
     control loop. *)
  let flows = Aggregate.fold agg ~init:[] ~f:(fun acc f -> f :: acc) in
  let tcam = Task.desired_rules task 0 in
  let flat_agg = Aggregate.with_backend Aggregate.Flat (fun () -> Aggregate.of_flows flows) in
  let ref_agg =
    Aggregate.with_backend Aggregate.Reference (fun () -> Aggregate.of_flows flows)
  in
  let backend_pair name f =
    [
      Test.make ~name:(name ^ " [flat]") (Staged.stage (fun () -> f flat_agg));
      Test.make ~name:(name ^ " [reference]") (Staged.stage (fun () -> f ref_agg));
    ]
  in
  let build backend =
    Staged.stage (fun () ->
        ignore (Aggregate.with_backend backend (fun () -> Aggregate.of_flows flows)))
  in
  [
    Test.make ~name:"store.build (of_flows) [flat]" (build Aggregate.Flat);
    Test.make ~name:"store.build (of_flows) [reference]" (build Aggregate.Reference);
  ]
  @ backend_pair "store.read_prefixes (TCAM batch)" (fun a ->
        ignore (Aggregate.read_prefixes a tcam))
  @ backend_pair "store.merge (self)" (fun a -> ignore (Aggregate.merge a a))

let run_micro ?snapshot_dir ~quick () =
  let open Bechamel in
  print_newline ();
  print_endline "Micro-benchmarks (Bechamel, monotonic clock)";
  print_endline "============================================";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            estimates := (name, est) :: !estimates;
            Printf.printf "  %-45s %12.0f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "  %-45s (no estimate)\n%!" name)
        analyzed)
    (micro_tests ());
  match snapshot_dir with
  | None -> ()
  | Some dir ->
    (* Micro timings are wall-clock: Info direction, tracked but never
       gating. *)
    let module Snapshot = Dream_obs.Bench_snapshot in
    let metrics =
      List.rev_map
        (fun (name, est) -> Snapshot.metric ~unit_:"ns" name est)
        (List.filter (fun (_, est) -> Float.is_finite est) !estimates)
    in
    let snap = Snapshot.make ~figure:"micro" ~quick ~metrics () in
    (match Snapshot.write snap ~dir with
    | Ok path -> Printf.printf "snapshot: %s\n%!" path
    | Error msg ->
      prerr_endline msg;
      exit 1)

let rec snapshot_dir_of = function
  | "--snapshot-dir" :: dir :: _ -> Some dir
  | _ :: rest -> snapshot_dir_of rest
  | [] -> None

let rec drop_snapshot_dir = function
  | "--snapshot-dir" :: _ :: rest -> drop_snapshot_dir rest
  | a :: rest -> a :: drop_snapshot_dir rest
  | [] -> []

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let snapshot_dir = snapshot_dir_of args in
  let args = drop_snapshot_dir args in
  let full = List.mem "--full" args in
  let micro_only = List.mem "--micro" args in
  let listing = List.mem "--list" args in
  let ids = List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args in
  let quick = not full in
  if listing then list_figures ()
  else if micro_only then run_micro ?snapshot_dir ~quick ()
  else begin
    (match ids with
    | [] -> (
      match Figures.run_all ?snapshot_dir ~quick () with
      | Ok () -> ()
      | Error msg ->
        prerr_endline msg;
        exit 1)
    | _ :: _ ->
      List.iter
        (fun id ->
          match Figures.run ?snapshot_dir ~quick id with
          | Ok () -> ()
          | Error msg ->
            prerr_endline msg;
            list_figures ();
            exit 1)
        ids);
    if ids = [] then run_micro ?snapshot_dir ~quick ()
  end
