(* Dynamic task instantiation in an SDN WAN: a standing coarse HHH task
   watches a /8; whenever it reports a suspicious aggregate, the operator
   (here, a little bot) instantiates a *focused* heavy-hitter task on that
   prefix to identify the sources — the paper's "drill down into anomalous
   traffic aggregates" workflow, exercising admission control and
   multiplexing along the way.

   Run with:  dune exec examples/wan_drilldown.exe *)

module Rng = Dream_util.Rng
module Prefix = Dream_prefix.Prefix
module Topology = Dream_traffic.Topology
module Generator = Dream_traffic.Generator
module Profile = Dream_traffic.Profile
module Task_spec = Dream_tasks.Task_spec
module Report = Dream_tasks.Report
module Controller = Dream_core.Controller
module Allocator = Dream_alloc.Allocator

let num_switches = 4

let rng = Rng.create 1234

let new_generator filter ~heavy_count =
  let topology = Topology.create rng ~filter ~num_switches ~switches_per_task:4 in
  let profile =
    { (Profile.default ~threshold:8.0) with Profile.heavy_count; phases = [] }
  in
  (topology, Generator.create (Rng.split rng) ~topology ~profile)

let () =
  let controller =
    Controller.create ~config:Dream_core.Config.default
      ~strategy:(Allocator.Dream Dream_alloc.Dream_allocator.default_config) ~num_switches
      ~capacity:1024
  in
  (* The standing task: HHHs across a /12 with a high threshold — cheap,
     always on. *)
  let watch_filter = Prefix.of_string "10.32.0.0/12" in
  let watch_topology, watch_generator = new_generator watch_filter ~heavy_count:20 in
  let watch_spec =
    Task_spec.make ~kind:Task_spec.Hierarchical_heavy_hitter ~filter:watch_filter
      ~leaf_length:24 ~threshold:24.0 ()
  in
  let watch_id =
    match
      Controller.submit controller ~spec:watch_spec ~topology:watch_topology
        ~source:(Dream_traffic.Source.of_generator watch_generator)
        ~duration:200
    with
    | `Admitted id -> id
    | `Rejected -> failwith "standing task rejected"
  in
  Printf.printf "standing HHH watch task %d on %s (threshold 24 Mb)\n\n" watch_id
    (Prefix.to_string watch_filter);
  (* The drill-down bot: on a suspicious /16-or-shorter HHH, spawn a
     focused HH task on it (once per prefix). *)
  let investigated = Hashtbl.create 8 in
  let spawn_drilldown prefix epoch =
    if not (Hashtbl.mem investigated prefix) then begin
      Hashtbl.replace investigated prefix ();
      let spec =
        Task_spec.make ~kind:Task_spec.Heavy_hitter ~filter:prefix ~leaf_length:24
          ~threshold:8.0 ()
      in
      (* The focused task watches the same underlying traffic: a generator
         restricted to the suspicious prefix. *)
      let topology = Topology.create rng ~filter:prefix ~num_switches ~switches_per_task:2 in
      let profile =
        { (Profile.default ~threshold:8.0) with Profile.heavy_count = 12; phases = [] }
      in
      let generator = Generator.create (Rng.split rng) ~topology ~profile in
      match
        Controller.submit controller ~spec ~topology
          ~source:(Dream_traffic.Source.of_generator generator)
          ~duration:60
      with
      | `Admitted id ->
        Printf.printf "  epoch %3d: drill-down task %d spawned on %s\n" epoch id
          (Prefix.to_string prefix)
      | `Rejected ->
        Printf.printf "  epoch %3d: drill-down on %s REJECTED (no headroom)\n" epoch
          (Prefix.to_string prefix)
    end
  in
  for epoch = 1 to 120 do
    Controller.tick controller;
    (* Give the watch task a few epochs to converge, then treat persistent
       /14../16 HHH aggregates as suspicious. *)
    (if epoch > 10 then
       match Controller.last_report controller ~task_id:watch_id with
       | Some report ->
         List.iter
           (fun (item : Report.item) ->
             let len = Prefix.length item.Report.prefix in
             if len >= 14 && len <= 16 && item.Report.magnitude > 30.0 then
               spawn_drilldown item.Report.prefix epoch)
           report.Report.items
       | None -> ());
    (* Print what the drill-down tasks found, as they finish. *)
    if epoch mod 40 = 0 then begin
      Printf.printf "\n-- epoch %d: %d active tasks --\n" epoch (Controller.active_tasks controller);
      List.iter
        (fun id ->
          if id <> watch_id then begin
            match Controller.last_report controller ~task_id:id with
            | Some report ->
              Printf.printf "  task %d: %d heavy sources identified\n" id (Report.size report)
            | None -> ()
          end)
        (Controller.active_task_ids controller)
    end
  done;
  Controller.finalize controller;
  Format.printf "@.%a@." Dream_core.Metrics.pp_summary (Controller.summary controller)
