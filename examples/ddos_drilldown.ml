(* DDoS detection with hierarchical heavy hitters: a botnet subnet ramps
   up traffic toward a victim; an HHH task watching the source space
   localises the attacking prefixes even though no single bot exceeds the
   heavy-hitter threshold.  This example drives the task object directly
   on hand-built traffic, showing the library below the controller layer.

   Run with:  dune exec examples/ddos_drilldown.exe *)

module Rng = Dream_util.Rng
module Prefix = Dream_prefix.Prefix
module Switch_id = Dream_traffic.Switch_id
module Flow = Dream_traffic.Flow
module Epoch_data = Dream_traffic.Epoch_data
module Aggregate = Dream_traffic.Aggregate
module Topology = Dream_traffic.Topology
module Task_spec = Dream_tasks.Task_spec
module Task = Dream_tasks.Task
module Report = Dream_tasks.Report

let filter = Prefix.of_string "172.16.0.0/12"

(* Background: benign sources spread over the /12, none interesting. *)
let background rng =
  List.init 48 (fun _ ->
      let addr = Prefix.first_address filter + Rng.int rng (Prefix.size filter) in
      Flow.make ~addr ~volume:(0.2 +. Rng.float rng 2.0))

(* The botnet: bots inside 172.20.96.0/20, each sending ~1.5 Mb — far below
   the 8 Mb HH threshold, but collectively far above it. *)
let botnet rng ~bots =
  let subnet = Prefix.of_string "172.20.96.0/20" in
  List.init bots (fun _ ->
      let addr = Prefix.first_address subnet + Rng.int rng (Prefix.size subnet) in
      Flow.make ~addr ~volume:(1.0 +. Rng.float rng 1.0))

let () =
  let rng = Rng.create 77 in
  let topology = Topology.create rng ~filter ~num_switches:2 ~switches_per_task:2 in
  let spec =
    Task_spec.make ~kind:Task_spec.Hierarchical_heavy_hitter ~filter ~leaf_length:24
      ~threshold:8.0 ()
  in
  let task = Task.create ~id:0 ~spec ~topology () in
  let allocations =
    Switch_id.Set.fold
      (fun sw acc -> Switch_id.Map.add sw 128 acc)
      (Task.switches task) Switch_id.Map.empty
  in
  let split flows =
    List.filter_map
      (fun (f : Flow.t) ->
        match Topology.switch_of_address topology f.Flow.addr with
        | Some sw -> Some (sw, [ f ])
        | None -> None)
      flows
  in
  for epoch = 0 to 29 do
    (* The attack ramps up from epoch 10. *)
    let bots = if epoch < 10 then 0 else (epoch - 9) * 8 in
    let flows = background rng @ botnet rng ~bots in
    let data = Epoch_data.of_flows ~epoch (split flows) in
    let readings =
      Switch_id.Set.fold
        (fun sw acc ->
          let agg = Epoch_data.switch_view data sw in
          (sw, List.map (fun p -> (p, Aggregate.volume agg p)) (Task.desired_rules task sw)) :: acc)
        (Task.switches task) []
    in
    Task.ingest_counters task readings;
    let report = Task.make_report task ~epoch in
    ignore (Task.estimate_accuracy task);
    Task.configure task ~allocations;
    if epoch mod 5 = 4 then begin
      Printf.printf "epoch %2d (%3d bots): %d HHH prefixes\n" epoch bots (Report.size report);
      List.iter
        (fun (item : Report.item) ->
          Printf.printf "    %-20s %7.1f Mb%s\n"
            (Prefix.to_string item.Report.prefix)
            item.Report.magnitude
            (if Prefix.covers (Prefix.of_string "172.20.96.0/20") item.Report.prefix
                || Prefix.covers item.Report.prefix (Prefix.of_string "172.20.96.0/20")
             then "   <- attack subnet"
             else ""))
        report.Report.items
    end
  done;
  print_newline ();
  print_endline "The HHH report converges onto the botnet's /20 (and prefixes inside it)";
  print_endline "even though every individual bot stays below the heavy-hitter threshold."
