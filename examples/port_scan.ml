(* Super-spreader detection — the connection-based measurement the paper
   points at sketches for (Section 3), since TCAM counters can only sum
   volumes.  A sketch of distinct-counting cells watches (source,
   destination) pairs; a port-scanning worm that contacts hundreds of
   hosts stands out however little traffic it sends.

   Run with:  dune exec examples/port_scan.exe *)

module Rng = Dream_util.Rng
module Super_spreader = Dream_sketch.Super_spreader

let () =
  let rng = Rng.create 4242 in
  let sketch = Super_spreader.create ~cells:2048 ~threshold:40 ~seed:7 () in
  for epoch = 0 to 9 do
    Super_spreader.begin_epoch sketch;
    (* Normal clients: 200 sources each talking to a handful of services. *)
    for src = 1 to 200 do
      for _ = 1 to 2 + Rng.int rng 4 do
        Super_spreader.observe sketch ~src ~dst:(Rng.int rng 50)
      done
    done;
    (* From epoch 4, an infected host starts scanning the /24. *)
    if epoch >= 4 then begin
      let scanner = 6666 in
      for dst = 0 to 150 + Rng.int rng 100 do
        Super_spreader.observe sketch ~src:scanner ~dst:(0x0A000000 + dst)
      done
    end;
    let detections = Super_spreader.detected sketch in
    Printf.printf "epoch %d: %d super-spreader(s)" epoch (List.length detections);
    List.iter (fun (src, fanout) -> Printf.printf "  [src %d: ~%.0f destinations]" src fanout)
      detections;
    Printf.printf "  (estimated precision %.2f)\n"
      (Super_spreader.estimate_precision sketch)
  done;
  print_newline ();
  print_endline "The scanner surfaces the epoch it starts sweeping, while 200 normal";
  print_endline "clients with small fan-outs stay below the threshold."
