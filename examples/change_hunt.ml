(* Change detection across switches: steady sources suddenly shift volume
   (a flash crowd on one source, an outage on another), and a CD task
   flags the sources whose volume deviates from its history by more than
   the threshold.  Traffic is hand-built so the changes are exact.

   Run with:  dune exec examples/change_hunt.exe *)

module Rng = Dream_util.Rng
module Prefix = Dream_prefix.Prefix
module Switch_id = Dream_traffic.Switch_id
module Flow = Dream_traffic.Flow
module Epoch_data = Dream_traffic.Epoch_data
module Aggregate = Dream_traffic.Aggregate
module Topology = Dream_traffic.Topology
module Task_spec = Dream_tasks.Task_spec
module Task = Dream_tasks.Task
module Report = Dream_tasks.Report

let filter = Prefix.of_string "192.0.0.0/12"

(* Ten steady services spread across the /12; service 2 flash-crowds at
   epoch 15, service 7 goes dark at epoch 22. *)
let service_addr i =
  Prefix.first_address filter + (i * (Prefix.size filter / 10)) + (i * 131) + 77

(* A little volume noise keeps per-prefix deviations non-zero, which is
   what steers the CD drill-down toward the services before any change
   erupts (perfectly flat traffic would leave the monitor at the root). *)
let service_volume rng ~epoch i =
  let noise = 0.88 +. Rng.float rng 0.24 in
  let base =
    match i with
    | 2 when epoch >= 15 -> 26.0 (* flash crowd: +20 Mb over its history *)
    | 7 when epoch >= 22 -> 0.0 (* outage: -12 Mb *)
    | 2 -> 6.0
    | 7 -> 12.0
    | _ -> 3.0 +. float_of_int i
  in
  base *. noise

let () =
  let rng = Rng.create 9 in
  let topology = Topology.create rng ~filter ~num_switches:4 ~switches_per_task:4 in
  let spec =
    Task_spec.make ~kind:Task_spec.Change_detection ~filter ~leaf_length:24 ~threshold:8.0 ()
  in
  let task = Task.create ~id:0 ~spec ~topology () in
  let allocations =
    Switch_id.Set.fold
      (fun sw acc -> Switch_id.Map.add sw 64 acc)
      (Task.switches task) Switch_id.Map.empty
  in
  for epoch = 0 to 29 do
    let flows =
      List.init 10 (fun i ->
          Flow.make ~addr:(service_addr i) ~volume:(service_volume rng ~epoch i))
    in
    let grouped =
      List.filter_map
        (fun (f : Flow.t) ->
          match Topology.switch_of_address topology f.Flow.addr with
          | Some sw -> Some (sw, [ f ])
          | None -> None)
        flows
    in
    let data = Epoch_data.of_flows ~epoch grouped in
    let readings =
      Switch_id.Set.fold
        (fun sw acc ->
          let agg = Epoch_data.switch_view data sw in
          (sw, List.map (fun p -> (p, Aggregate.volume agg p)) (Task.desired_rules task sw)) :: acc)
        (Task.switches task) []
    in
    Task.ingest_counters task readings;
    let report = Task.make_report task ~epoch in
    ignore (Task.estimate_accuracy task);
    Task.configure task ~allocations;
    if Report.size report > 0 then begin
      Printf.printf "epoch %2d: %d significant change(s)\n" epoch (Report.size report);
      List.iter
        (fun (item : Report.item) ->
          Printf.printf "    %-20s deviates %6.1f Mb from its mean\n"
            (Prefix.to_string item.Report.prefix)
            item.Report.magnitude)
        report.Report.items
    end
  done;
  print_newline ();
  print_endline "The flash crowd (epoch 15) and the outage (epoch 22) both surface as";
  print_endline "volume deviations beyond the 8 Mb threshold; steady services stay quiet."
