(* Quickstart: submit one heavy-hitter task to a DREAM controller over a
   small switch network, tick the control loop, and read the reports.

   Run with:  dune exec examples/quickstart.exe *)

module Rng = Dream_util.Rng
module Prefix = Dream_prefix.Prefix
module Topology = Dream_traffic.Topology
module Generator = Dream_traffic.Generator
module Profile = Dream_traffic.Profile
module Task_spec = Dream_tasks.Task_spec
module Report = Dream_tasks.Report
module Controller = Dream_core.Controller
module Allocator = Dream_alloc.Allocator

let () =
  (* A network of 4 switches with 512 TCAM entries each, managed by the
     DREAM allocator. *)
  let controller =
    Controller.create ~config:Dream_core.Config.default
      ~strategy:(Allocator.Dream Dream_alloc.Dream_allocator.default_config) ~num_switches:4
      ~capacity:512
  in

  (* The user's measurement task: heavy hitters (source IPs sending more
     than 8 Mb per epoch) inside 10.16.0.0/12, with an 80% accuracy bound. *)
  let spec =
    Dream_tasks.Query.(
      heavy_hitters ~over:"10.16.0.0/12"
      |> exceeding_mb 8.0
      |> with_accuracy 0.8
      |> drill_to 24
      |> to_spec_exn)
  in
  let filter = spec.Task_spec.filter in

  (* Where that traffic enters the network, and a synthetic trace of it
     (stands in for a packet trace; fully determined by the seed). *)
  let rng = Rng.create 2024 in
  let topology = Topology.create rng ~filter ~num_switches:4 ~switches_per_task:4 in
  let generator =
    Generator.create (Rng.split rng) ~topology ~profile:(Profile.default ~threshold:8.0)
  in

  let task_id =
    match
      Controller.submit controller ~spec ~topology
        ~source:(Dream_traffic.Source.of_generator generator)
        ~duration:120
    with
    | `Admitted id ->
      Printf.printf "task admitted with id %d\n" id;
      id
    | `Rejected -> failwith "the controller rejected the task (insufficient headroom)"
  in

  (* Drive the control loop; print the report every 30 epochs. *)
  for epoch = 1 to 120 do
    Controller.tick controller;
    if epoch mod 30 = 0 then begin
      match Controller.last_report controller ~task_id with
      | Some report ->
        Printf.printf "\n=== epoch %d: %d heavy hitters detected ===\n" epoch (Report.size report);
        List.iter
          (fun (item : Report.item) ->
            Printf.printf "  %-20s %6.1f Mb\n"
              (Prefix.to_string item.Report.prefix)
              item.Report.magnitude)
          report.Report.items;
        (match Controller.smoothed_accuracy controller ~task_id with
        | Some acc -> Printf.printf "  estimated recall: %.0f%%\n" (acc *. 100.0)
        | None -> ())
      | None -> ()
    end
  done;
  Controller.finalize controller;
  Format.printf "@.final: %a@." Dream_core.Metrics.pp_summary (Controller.summary controller)
