(* Multi-tenant cloud: each tenant owns a /12 and instantiates its own
   measurement task (HH, HHH or CD) with Poisson arrivals, as in the
   paper's motivating scenario.  The same workload runs under DREAM and
   under the Equal baseline, showing DREAM's admission control and
   temporal/spatial multiplexing keeping admitted tenants satisfied where
   Equal starves the tail.

   Run with:  dune exec examples/multi_tenant.exe *)

module Scenario = Dream_workload.Scenario
module Experiment = Dream_sim.Experiment
module Metrics = Dream_core.Metrics
module Allocator = Dream_alloc.Allocator

let () =
  let scenario =
    {
      Scenario.default with
      Scenario.num_tasks = 32;
      capacity = 512;
      arrival_window = 120;
      mean_duration = 80;
      total_epochs = 260;
    }
  in
  Format.printf "workload: %a@." Scenario.pp scenario;
  Format.printf "expected concurrent tenants: %.0f@.@." (Scenario.concurrency scenario);
  List.iter
    (fun strategy ->
      let r = Experiment.run scenario strategy in
      let s = r.Experiment.summary in
      Format.printf "%-8s mean satisfaction %5.1f%%  5th-pct %5.1f%%  rejected %4.1f%%  dropped %4.1f%%@."
        r.Experiment.strategy s.Metrics.mean_satisfaction s.Metrics.p5_satisfaction
        s.Metrics.rejection_pct s.Metrics.drop_pct)
    [ Experiment.dream_strategy; Allocator.Equal; Allocator.Fixed 32 ];
  print_newline ();
  print_endline "DREAM keeps admitted tenants' accuracy above their bound by statistically";
  print_endline "multiplexing TCAM counters and rejecting what cannot be satisfied;";
  print_endline "Equal admits everything and starves the tail; Fixed_32 wastes reservations."
